"""Grid/zip parameter sweeps with Monte-Carlo replication over the API.

A :class:`Sweep` pairs a base :class:`~repro.api.spec.JobSpec` with named
parameter axes. :func:`run_sweep` expands the axes into cells (the cartesian
product in ``grid`` mode, position-wise in ``zip`` mode), replicates every
cell over ``trials`` independent runs, executes them on the sweep's backend —
serially or via a ``concurrent.futures`` pool — and returns a
:class:`SweepResult` whose records aggregate into report tables.

Seeding strategies
------------------
``"spawn"`` (default)
    Every (cell, trial) task receives its own :class:`numpy.random.SeedSequence`
    child derived from the base spec's seed, so results are deterministic and
    *identical* whether the sweep runs serially or in parallel.
``"shared"``
    A single generator is threaded through the cells in order — the historic
    behaviour of the hand-written experiment loops, preserved so the rewired
    figure/table drivers reproduce their pre-API output byte for byte. The
    stream is inherently sequential, so this strategy refuses parallelism.

The hot path
------------
Trial count is the knob Monte-Carlo users turn most, so :func:`run_sweep`
works hard to keep its cost sub-linear:

* **Plan hoisting.** A cell's scheme planning depends only on the cell's
  parameters whenever it consumes no randomness (every deterministic
  placement). ``run_sweep`` detects that with a probe build (comparing the
  probe generator's state before and after) and re-plans once per cell
  instead of once per trial, passing the frozen
  :class:`~repro.schemes.base.ExecutionPlan` through the spec. Random
  placements (BCC, randomized, Reed-Solomon's seed draw) are left alone —
  their plan *is* part of what a trial samples — so hoisting never changes
  a single bit of any result, on either engine and under either seeding
  strategy.
* **Trial batching** (``trial_batching=``). Under the spawn strategy a
  whole cell can be dispatched as *one* task that simulates every trial in
  one vectorized engine entry (:meth:`TimingSimBackend.run_batch
  <repro.api.backends.TimingSimBackend.run_batch>`). ``"auto"`` (default)
  batches exactly the cells where that is bit-identical to per-trial tasks
  (vectorized engine + draw-free planning); ``"always"`` also batches cells
  with random placements, freezing one placement per cell — each trial is
  then bit-identical to a solo run with the shared plan at the same spawned
  seed (the :func:`~repro.simulation.vectorized.simulate_job_batch`
  contract), but the trial average estimates the runtime *given* that
  placement rather than averaged over placements; ``"never"`` keeps
  per-trial tasks.
* **Summary records** (``record="summary"``). Each task compacts its
  :class:`~repro.api.result.RunResult` before returning it, so a process
  pool ships a few hundred bytes of aggregates per trial instead of
  pickling full per-iteration logs across the process boundary. Tables and
  aggregate metrics are unchanged; per-iteration access is dropped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.backends import BackendLike, get_backend
from repro.api.result import RunResult, validate_record
from repro.api.spec import JobSpec
from repro.exceptions import ConfigurationError
from repro.scheduling.core import (
    SweepPlan,
    build_sweep_plan,
    execute_task,
    hoist_cell_plan,
    probe_rng_free_plan,
    should_batch_cell,
)
from repro.scheduling.executors import Executor, resolve_executor
from repro.schemes.base import Scheme
from repro.utils.counting import CountingList
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.service.cache import ResultCache

# Scheduling internals re-exported under their historical private names;
# run_sweep resolves these at call time, so tests (and downstream code) can
# still monkeypatch e.g. ``repro.api.sweep._hoist_cell_plan``.
_probe_rng_free_plan = probe_rng_free_plan
_hoist_cell_plan = hoist_cell_plan
_batch_cell = should_batch_cell
_run_task = execute_task

__all__ = [
    "Sweep",
    "SweepRecord",
    "SweepResult",
    "TRIAL_BATCHING_MODES",
    "run_sweep",
]

#: Recognised ``trial_batching`` knob values (see the module docstring).
TRIAL_BATCHING_MODES = ("auto", "always", "never")


@dataclass(frozen=True)
class Sweep:
    """A declarative parameter sweep over one base job spec.

    Attributes
    ----------
    base:
        The spec every cell is derived from.
    parameters:
        Ordered mapping from override key (a :meth:`JobSpec.with_overrides`
        key such as ``"scheme"``, ``"scheme.load"``, ``"cluster"``,
        ``"num_iterations"``) to the sequence of values to sweep.
    mode:
        ``"grid"`` for the cartesian product of the axes (first axis
        outermost), ``"zip"`` for position-wise pairing of equal-length axes.
    trials:
        Monte-Carlo replications per cell.
    backend:
        Backend name, instance, or a bare ``spec -> RunResult`` callable.
        Pass a configured instance to pick a timing engine for the whole
        sweep (``backend=TimingSimBackend(engine="vectorized")``); individual
        cells can override it via a ``backend_options`` axis, e.g.
        ``{"backend_options": [{"engine": "loop"}, {"engine": "vectorized"}]}``.
    seed_strategy:
        ``"spawn"`` or ``"shared"`` (see the module docstring).
    """

    base: JobSpec
    parameters: Mapping[str, Sequence[object]] = field(default_factory=dict)
    mode: str = "grid"
    trials: int = 1
    backend: BackendLike = "timing"
    seed_strategy: str = "spawn"

    def __post_init__(self) -> None:
        check_positive_int(self.trials, "trials")
        if self.mode not in ("grid", "zip"):
            raise ConfigurationError(
                f"sweep mode must be 'grid' or 'zip', got {self.mode!r}"
            )
        if self.seed_strategy not in ("spawn", "shared"):
            raise ConfigurationError(
                "seed_strategy must be 'spawn' or 'shared', got "
                f"{self.seed_strategy!r}"
            )
        for key, values in self.parameters.items():
            if len(values) == 0:
                raise ConfigurationError(f"sweep axis {key!r} has no values")
        if self.mode == "zip" and self.parameters:
            lengths = {key: len(values) for key, values in self.parameters.items()}
            if len(set(lengths.values())) > 1:
                raise ConfigurationError(
                    f"zip-mode sweep axes must have equal lengths, got {lengths}"
                )

    # ------------------------------------------------------------------ #
    def cells(self) -> List[Dict[str, object]]:
        """The parameter assignment of every sweep cell, in execution order."""
        if not self.parameters:
            return [{}]
        keys = list(self.parameters)
        if self.mode == "zip":
            return [
                dict(zip(keys, values))
                for values in zip(*(self.parameters[key] for key in keys))
            ]
        return [
            dict(zip(keys, values))
            for values in itertools.product(
                *(self.parameters[key] for key in keys)
            )
        ]

    def specs(self) -> List[JobSpec]:
        """The derived spec of every cell (without per-task seeds applied)."""
        return [self.base.with_overrides(cell) for cell in self.cells()]


@dataclass(frozen=True)
class SweepRecord:
    """One executed (cell, trial) task."""

    cell: int
    params: Mapping[str, object]
    trial: int
    result: RunResult


def _format_value(value: object) -> object:
    """Compact display form of a sweep parameter value for table cells."""
    if isinstance(value, Scheme):
        return repr(value)
    if isinstance(value, Mapping):
        name = value.get("name", "?")
        options = ", ".join(
            f"{key}={option}" for key, option in value.items() if key != "name"
        )
        return f"{name}({options})" if options else str(name)
    if isinstance(value, (str, int, float, bool)):
        return value
    return type(value).__name__


@dataclass
class SweepResult:
    """All records of one sweep, plus tabulation helpers.

    The per-cell aggregation (the work behind :meth:`aggregate` and every
    :meth:`to_table` call) is cached, keyed on the record list's mutation
    counter — so repeated tabulation of a finished sweep costs one dict copy
    per cell, while *any* mutation of ``records`` (appends, but also
    in-place replacements a ``len()`` key would miss) recomputes.
    """

    records: List[SweepRecord] = field(default_factory=list)
    parameter_names: Tuple[str, ...] = ()
    trials: int = 1
    _aggregate_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.records, CountingList):
            self.records = CountingList(self.records)

    def __getstate__(self) -> dict:
        # Unpickling rebuilds the record list with a fresh mutation counter;
        # a carried cache could collide with a different history. Drop it.
        state = self.__dict__.copy()
        state["_aggregate_cache"] = None
        return state

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[SweepRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def cell_records(self, cell: int) -> List[SweepRecord]:
        """The trial records of one cell, in trial order."""
        return [record for record in self.records if record.cell == cell]

    @property
    def num_cells(self) -> int:
        """Number of distinct parameter assignments."""
        return 1 + max((record.cell for record in self.records), default=-1)

    def rows(self) -> List[Dict[str, object]]:
        """One dict per record: parameters, trial index, and the summary."""
        return [
            {
                **{key: _format_value(value) for key, value in record.params.items()},
                "trial": record.trial,
                **record.result.summary(),
            }
            for record in self.records
        ]

    def aggregate(
        self, metrics: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        """One dict per cell: parameters plus trial-averaged numeric metrics.

        ``metrics`` defaults to every numeric key appearing in the records'
        summaries, in first-seen order. A metric present in only *some* of a
        cell's trial summaries is averaged over the trials that carry it,
        and the row then also reports ``"{metric}_count"`` with that trial
        count — without it, ``trials: N`` next to a subset mean would
        silently misrepresent the sample size. Rows where every trial
        carries the metric are unchanged (no count column).

        The result is cached (see the class
        docstring); the key tracks both the record *list* and each result's
        own iteration-log mutation counter, so editing a result in place
        (e.g. appending or removing outcomes) recomputes too. Callers
        receive fresh per-row dict copies, so mutating a returned row never
        corrupts the cache.
        """
        metrics_key = None if metrics is None else tuple(metrics)
        version = getattr(self.records, "version", None)
        result_versions = tuple(
            getattr(record.result.iterations, "version", -1)
            for record in self.records
        )
        cache_key = (version, result_versions, metrics_key)
        cached = self._aggregate_cache
        if version is not None and cached is not None and cached[0] == cache_key:
            return [dict(row) for row in cached[1]]

        # One pass over the records: group by cell and collect summaries.
        by_cell: Dict[int, List[SweepRecord]] = {}
        summaries: Dict[int, List[dict]] = {}
        for record in self.records:
            by_cell.setdefault(record.cell, []).append(record)
            summaries.setdefault(record.cell, []).append(record.result.summary())
        if metrics is None:
            seen: Dict[str, None] = {}
            for cell_summaries in summaries.values():
                for summary in cell_summaries:
                    for key, value in summary.items():
                        if isinstance(value, (int, float)) and not isinstance(
                            value, bool
                        ):
                            seen.setdefault(key)
            metrics = list(seen)
        rows: List[Dict[str, object]] = []
        for cell in sorted(by_cell):
            records = by_cell[cell]
            row: Dict[str, object] = {
                key: _format_value(value) for key, value in records[0].params.items()
            }
            schemes = {record.result.scheme_name for record in records}
            if len(schemes) == 1:
                row.setdefault("scheme", next(iter(schemes)))
            row["trials"] = len(records)
            cell_summaries = summaries[cell]
            for metric in metrics:
                values = [s[metric] for s in cell_summaries if metric in s]
                if values:
                    row[metric] = float(np.mean(values))
                    if len(values) < len(cell_summaries):
                        # Partial coverage: the mean is over a subset of the
                        # trials while ``trials`` reports all of them, which
                        # silently skews any ranking built on the row. The
                        # count column is the signal; full-coverage rows are
                        # unchanged.
                        row[f"{metric}_count"] = len(values)
            rows.append(row)
        if version is not None:
            self._aggregate_cache = (cache_key, rows)
        return [dict(row) for row in rows]

    def to_table(
        self,
        metrics: Optional[Sequence[str]] = None,
        *,
        title: str = "",
    ) -> TextTable:
        """Trial-averaged results as a monospace table, one row per cell."""
        rows = self.aggregate(metrics)
        if not rows:
            return TextTable(["(empty sweep)"], title=title)
        columns: Dict[str, None] = {}
        for row in rows:
            for key in row:
                columns.setdefault(key)
        table = TextTable(list(columns), title=title)
        for row in rows:
            table.add_row([row.get(column, "") for column in columns])
        return table


def run_sweep(
    sweep: Sweep,
    *,
    max_workers: Optional[int] = None,
    executor: Union[str, Executor] = "thread",
    record: str = "full",
    trial_batching: str = "auto",
    cache: Optional[Union[str, "ResultCache"]] = None,
) -> SweepResult:
    """Execute every (cell, trial) task of a sweep and collect the records.

    ``run_sweep`` is a thin façade over the shared scheduling core
    (:mod:`repro.scheduling`): build the cell-task plan once, hand it to an
    executor, collect the records. Every execution mode — serial, thread
    pool, process pool, async — dispatches the same plan through the same
    task runner, so they produce bit-identical records under the default
    ``"spawn"`` seed strategy.

    Parameters
    ----------
    sweep:
        The sweep to run.
    max_workers:
        ``None``/``0``/``1`` runs serially; anything larger fans the tasks
        out over the chosen executor. Results are identical either way
        under the default ``"spawn"`` seed strategy.
    executor:
        ``"thread"`` (default), ``"process"``, ``"async"``, ``"serial"``,
        ``"distributed"``, or an
        :class:`~repro.scheduling.executors.Executor` instance.
        Process pools give real multi-core speed-up for the CPU-bound
        simulation backends but require picklable specs and backends — see
        the *Parallel sweeps and pickling* section of :doc:`the performance
        guide </performance>` for the constraints. ``"distributed"``
        shards the cell tasks across the ``repro serve`` nodes named by
        the ``REPRO_NODES`` environment variable (pass a configured
        :class:`~repro.scheduling.distributed.DistributedExecutor` for
        lease/retry/join control); it ignores ``max_workers`` —
        concurrency belongs to the nodes.
    record:
        ``"full"`` (default) keeps every result's per-iteration log;
        ``"summary"`` compacts each result to its aggregate statistics in
        the worker (see :meth:`RunResult.compact
        <repro.api.result.RunResult.compact>`), so parallel sweeps stop
        pickling iteration logs across process boundaries. Tables and
        aggregate metrics are identical in both modes.
    trial_batching:
        ``"auto"`` (default), ``"always"``, or ``"never"`` — whether whole
        cells are dispatched as single trial-batched engine entries instead
        of one task per (cell, trial). See the module docstring: ``"auto"``
        batches exactly when bit-identical to per-trial execution,
        ``"always"`` additionally freezes one random placement per cell.
    cache:
        ``None`` (default) computes every task. A
        :class:`~repro.service.cache.ResultCache` instance (or a directory
        path, which opens one with a disk tier there) serves cached tasks
        by content fingerprint and stores the rest after execution —
        analytic cells are memoized forever, simulated cells are
        deterministic at fixed seeds, so repeat sweeps become cache hits.
        Uncacheable tasks (shared-generator seeds, custom runner backends)
        are computed as usual. See :doc:`the service guide </service>` for
        the fingerprint contract.

    Examples
    --------
    Sweep the computational load over one base spec and read the records
    back in cell order:

    >>> from repro.api import JobSpec, Sweep, run_sweep
    >>> from repro.cluster.spec import ClusterSpec
    >>> from repro.stragglers.models import DeterministicDelay
    >>> cluster = ClusterSpec.homogeneous(10, DeterministicDelay(0.01))
    >>> base = JobSpec(
    ...     scheme={"name": "bcc", "load": 5},
    ...     cluster=cluster,
    ...     num_units=20,
    ...     num_iterations=2,
    ...     seed=0,
    ... )
    >>> result = run_sweep(Sweep(base, parameters={"scheme.load": [5, 10]}))
    >>> len(result)
    2
    >>> [record.params["scheme.load"] for record in result]
    [5, 10]

    The same sweep on the closed-form analytic backend never simulates an
    iteration (and is therefore O(1) in ``num_iterations``):

    >>> analytic = run_sweep(
    ...     Sweep(base, parameters={"scheme.load": [5, 10]}, backend="analytic")
    ... )
    >>> [record.result.backend for record in analytic]
    ['analytic', 'analytic']
    """
    validate_record(record)
    if trial_batching not in TRIAL_BATCHING_MODES:
        raise ConfigurationError(
            f"unknown trial_batching mode {trial_batching!r}; expected one "
            f"of {list(TRIAL_BATCHING_MODES)}"
        )
    backend = get_backend(sweep.backend)
    parallel = max_workers is not None and max_workers > 1
    if sweep.seed_strategy == "shared" and parallel:
        raise ConfigurationError(
            "the 'shared' seed strategy threads one generator through the "
            "cells sequentially and cannot run in parallel; use the "
            "'spawn' strategy for parallel sweeps"
        )
    if parallel or not isinstance(executor, str) or executor == "distributed":
        # "distributed" executes on remote nodes whatever max_workers says —
        # a one-task sweep still belongs on the node that may have it cached.
        runner = resolve_executor(executor, max_workers)
    else:
        # max_workers of None/0/1 has always meant serial execution,
        # whatever the executor name says.
        runner = resolve_executor("serial")
    # Executors resolved from a *name* are owned by this call: their
    # (persistent) pools are released on the way out. Instances passed in
    # stay open — the caller keeps them to reuse the warm pool across
    # sweeps and closes them when done.
    ephemeral = isinstance(executor, str)

    plan = build_sweep_plan(
        sweep,
        backend=backend,
        record=record,
        trial_batching=trial_batching,
        pickle_safe=runner.pickle_safe,
        # Resolve the hoist hook at call time so monkeypatching the module
        # global (a long-standing test seam) still takes effect.
        hoist=_hoist_cell_plan,
    )
    # Missing attribute counts as unsafe: third-party executors must opt in
    # to sequential plans explicitly.
    if plan.sequential and not getattr(runner, "sequential_safe", False):
        raise ConfigurationError(
            "the sweep's plan threads shared state through its tasks (the "
            "'shared' seed strategy's single generator) and must execute "
            f"sequentially, but executor {runner.name!r} dispatches tasks "
            "concurrently; use executor='serial' (or the 'spawn' seed "
            "strategy) instead"
        )

    try:
        if cache is not None:
            from repro.service.cache import ResultCache

            store = cache if isinstance(cache, ResultCache) else ResultCache(cache)
            results = _execute_with_cache(plan, runner, store)
        else:
            results = runner.execute(plan.tasks)
    finally:
        if ephemeral:
            closer = getattr(runner, "close", None)
            if closer is not None:
                closer()

    records = [
        SweepRecord(cell=index, params=params, trial=trial, result=result)
        for task, task_results in zip(plan.tasks, results)
        for (index, params, trial), result in zip(task.entries, task_results)
    ]
    return SweepResult(
        records=records,
        parameter_names=plan.parameter_names,
        trials=plan.trials,
    )


def _execute_with_cache(
    plan: SweepPlan, runner: Executor, store: "ResultCache"
) -> List[List[RunResult]]:
    """Serve cached tasks from the store, execute the rest, store them back.

    Uncacheable tasks (no canonical fingerprint — e.g. shared-generator
    seeds or custom runner backends) get a ``None`` key and are simply
    computed. Misses are executed together through the runner, so a mostly
    cold cache still gets the executor's full parallelism; results come
    back in task order regardless of the hit/miss split.
    """
    keys = [store.task_key(task) for task in plan.tasks]
    hits = [None if key is None else store.lookup(key) for key in keys]
    misses = [task for task, hit in zip(plan.tasks, hits) if hit is None]
    computed = iter(runner.execute(misses)) if misses else iter(())

    results: List[List[RunResult]] = []
    for task, key, hit in zip(plan.tasks, keys, hits):
        if hit is not None:
            results.append(hit)
            continue
        task_results = next(computed)
        if key is not None:
            store.store(key, task_results)
        results.append(task_results)
    return results
