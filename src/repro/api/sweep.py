"""Grid/zip parameter sweeps with Monte-Carlo replication over the API.

A :class:`Sweep` pairs a base :class:`~repro.api.spec.JobSpec` with named
parameter axes. :func:`run_sweep` expands the axes into cells (the cartesian
product in ``grid`` mode, position-wise in ``zip`` mode), replicates every
cell over ``trials`` independent runs, executes them on the sweep's backend —
serially or via a ``concurrent.futures`` pool — and returns a
:class:`SweepResult` whose records aggregate into report tables.

Seeding strategies
------------------
``"spawn"`` (default)
    Every (cell, trial) task receives its own :class:`numpy.random.SeedSequence`
    child derived from the base spec's seed, so results are deterministic and
    *identical* whether the sweep runs serially or in parallel.
``"shared"``
    A single generator is threaded through the cells in order — the historic
    behaviour of the hand-written experiment loops, preserved so the rewired
    figure/table drivers reproduce their pre-API output byte for byte. The
    stream is inherently sequential, so this strategy refuses parallelism.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.backends import BackendLike, get_backend
from repro.api.result import RunResult
from repro.api.spec import JobSpec
from repro.exceptions import (
    AnalyticIntractableError,
    ConfigurationError,
    SimulationError,
)
from repro.schemes.base import Scheme
from repro.utils.rng import as_generator, random_seed_sequence
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = ["Sweep", "SweepRecord", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class Sweep:
    """A declarative parameter sweep over one base job spec.

    Attributes
    ----------
    base:
        The spec every cell is derived from.
    parameters:
        Ordered mapping from override key (a :meth:`JobSpec.with_overrides`
        key such as ``"scheme"``, ``"scheme.load"``, ``"cluster"``,
        ``"num_iterations"``) to the sequence of values to sweep.
    mode:
        ``"grid"`` for the cartesian product of the axes (first axis
        outermost), ``"zip"`` for position-wise pairing of equal-length axes.
    trials:
        Monte-Carlo replications per cell.
    backend:
        Backend name, instance, or a bare ``spec -> RunResult`` callable.
        Pass a configured instance to pick a timing engine for the whole
        sweep (``backend=TimingSimBackend(engine="vectorized")``); individual
        cells can override it via a ``backend_options`` axis, e.g.
        ``{"backend_options": [{"engine": "loop"}, {"engine": "vectorized"}]}``.
    seed_strategy:
        ``"spawn"`` or ``"shared"`` (see the module docstring).
    """

    base: JobSpec
    parameters: Mapping[str, Sequence[object]] = field(default_factory=dict)
    mode: str = "grid"
    trials: int = 1
    backend: BackendLike = "timing"
    seed_strategy: str = "spawn"

    def __post_init__(self) -> None:
        check_positive_int(self.trials, "trials")
        if self.mode not in ("grid", "zip"):
            raise ConfigurationError(
                f"sweep mode must be 'grid' or 'zip', got {self.mode!r}"
            )
        if self.seed_strategy not in ("spawn", "shared"):
            raise ConfigurationError(
                "seed_strategy must be 'spawn' or 'shared', got "
                f"{self.seed_strategy!r}"
            )
        for key, values in self.parameters.items():
            if len(values) == 0:
                raise ConfigurationError(f"sweep axis {key!r} has no values")
        if self.mode == "zip" and self.parameters:
            lengths = {key: len(values) for key, values in self.parameters.items()}
            if len(set(lengths.values())) > 1:
                raise ConfigurationError(
                    f"zip-mode sweep axes must have equal lengths, got {lengths}"
                )

    # ------------------------------------------------------------------ #
    def cells(self) -> List[Dict[str, object]]:
        """The parameter assignment of every sweep cell, in execution order."""
        if not self.parameters:
            return [{}]
        keys = list(self.parameters)
        if self.mode == "zip":
            return [
                dict(zip(keys, values))
                for values in zip(*(self.parameters[key] for key in keys))
            ]
        return [
            dict(zip(keys, values))
            for values in itertools.product(
                *(self.parameters[key] for key in keys)
            )
        ]

    def specs(self) -> List[JobSpec]:
        """The derived spec of every cell (without per-task seeds applied)."""
        return [self.base.with_overrides(cell) for cell in self.cells()]


@dataclass(frozen=True)
class SweepRecord:
    """One executed (cell, trial) task."""

    cell: int
    params: Mapping[str, object]
    trial: int
    result: RunResult


def _format_value(value: object) -> object:
    """Compact display form of a sweep parameter value for table cells."""
    if isinstance(value, Scheme):
        return repr(value)
    if isinstance(value, Mapping):
        name = value.get("name", "?")
        options = ", ".join(
            f"{key}={option}" for key, option in value.items() if key != "name"
        )
        return f"{name}({options})" if options else str(name)
    if isinstance(value, (str, int, float, bool)):
        return value
    return type(value).__name__


@dataclass
class SweepResult:
    """All records of one sweep, plus tabulation helpers."""

    records: List[SweepRecord] = field(default_factory=list)
    parameter_names: Tuple[str, ...] = ()
    trials: int = 1

    # ------------------------------------------------------------------ #
    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def cell_records(self, cell: int) -> List[SweepRecord]:
        """The trial records of one cell, in trial order."""
        return [record for record in self.records if record.cell == cell]

    @property
    def num_cells(self) -> int:
        """Number of distinct parameter assignments."""
        return 1 + max((record.cell for record in self.records), default=-1)

    def rows(self) -> List[Dict[str, object]]:
        """One dict per record: parameters, trial index, and the summary."""
        return [
            {
                **{key: _format_value(value) for key, value in record.params.items()},
                "trial": record.trial,
                **record.result.summary(),
            }
            for record in self.records
        ]

    def aggregate(
        self, metrics: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        """One dict per cell: parameters plus trial-averaged numeric metrics.

        ``metrics`` defaults to every numeric key appearing in the records'
        summaries, in first-seen order.
        """
        if metrics is None:
            seen: Dict[str, None] = {}
            for record in self.records:
                for key, value in record.result.summary().items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        seen.setdefault(key)
            metrics = list(seen)
        rows: List[Dict[str, object]] = []
        for cell in range(self.num_cells):
            records = self.cell_records(cell)
            if not records:
                continue
            row: Dict[str, object] = {
                key: _format_value(value) for key, value in records[0].params.items()
            }
            schemes = {record.result.scheme_name for record in records}
            if len(schemes) == 1:
                row.setdefault("scheme", next(iter(schemes)))
            row["trials"] = len(records)
            summaries = [record.result.summary() for record in records]
            for metric in metrics:
                values = [s[metric] for s in summaries if metric in s]
                if values:
                    row[metric] = float(np.mean(values))
            rows.append(row)
        return rows

    def to_table(
        self,
        metrics: Optional[Sequence[str]] = None,
        *,
        title: str = "",
    ) -> TextTable:
        """Trial-averaged results as a monospace table, one row per cell."""
        rows = self.aggregate(metrics)
        if not rows:
            return TextTable(["(empty sweep)"], title=title)
        columns: Dict[str, None] = {}
        for row in rows:
            for key in row:
                columns.setdefault(key)
        table = TextTable(list(columns), title=title)
        for row in rows:
            table.add_row([row.get(column, "") for column in columns])
        return table


def _run_task(task: Tuple[object, JobSpec]) -> RunResult:
    backend, spec = task
    try:
        return backend.run(spec)
    except AnalyticIntractableError as error:
        # Surface which sweep cell fell outside the closed-form regime —
        # with dozens of cells, "which configuration?" is the question.
        raise AnalyticIntractableError(
            f"sweep cell (scheme={spec.scheme!r}, "
            f"serialize_master_link={spec.serialize_master_link}) has no "
            f"closed-form runtime: {error}"
        ) from error
    except SimulationError as error:
        # Same courtesy for simulation failures: name the cell. The usual
        # cause is a dynamic cluster whose churn removed the last holders of
        # a data unit; the churn ablation driver (repro.experiments.churn)
        # reports such cells as FAILED instead of aborting.
        raise SimulationError(
            f"sweep cell (scheme={spec.scheme!r}) could not complete: {error}"
        ) from error


def run_sweep(
    sweep: Sweep,
    *,
    max_workers: Optional[int] = None,
    executor: str = "thread",
) -> SweepResult:
    """Execute every (cell, trial) task of a sweep and collect the records.

    Parameters
    ----------
    sweep:
        The sweep to run.
    max_workers:
        ``None``/``0``/``1`` runs serially; anything larger fans the tasks
        out over a ``concurrent.futures`` pool. Results are identical either
        way under the default ``"spawn"`` seed strategy.
    executor:
        ``"thread"`` (default) or ``"process"``. The simulation backends are
        CPU-bound Python loops that hold the GIL, so real speed-up on a
        multi-core machine needs ``"process"`` — which requires the spec and
        backend to be picklable (named backends and config-mapping schemes
        are; custom runner closures usually are not). Threads still help
        when the backend itself waits on other processes or IO (e.g.
        :class:`~repro.api.backends.MultiprocessBackend`).

    Examples
    --------
    Sweep the computational load over one base spec and read the records
    back in cell order:

    >>> from repro.api import JobSpec, Sweep, run_sweep
    >>> from repro.cluster.spec import ClusterSpec
    >>> from repro.stragglers.models import DeterministicDelay
    >>> cluster = ClusterSpec.homogeneous(10, DeterministicDelay(0.01))
    >>> base = JobSpec(
    ...     scheme={"name": "bcc", "load": 5},
    ...     cluster=cluster,
    ...     num_units=20,
    ...     num_iterations=2,
    ...     seed=0,
    ... )
    >>> result = run_sweep(Sweep(base, parameters={"scheme.load": [5, 10]}))
    >>> len(result)
    2
    >>> [record.params["scheme.load"] for record in result]
    [5, 10]

    The same sweep on the closed-form analytic backend never simulates an
    iteration (and is therefore O(1) in ``num_iterations``):

    >>> analytic = run_sweep(
    ...     Sweep(base, parameters={"scheme.load": [5, 10]}, backend="analytic")
    ... )
    >>> [record.result.backend for record in analytic]
    ['analytic', 'analytic']
    """
    backend = get_backend(sweep.backend)
    cells = sweep.cells()
    parallel = max_workers is not None and max_workers > 1

    specs: List[JobSpec] = []
    order: List[Tuple[int, Mapping[str, object], int]] = []
    if sweep.seed_strategy == "shared":
        if parallel:
            raise ConfigurationError(
                "the 'shared' seed strategy threads one generator through the "
                "cells sequentially and cannot run in parallel; use the "
                "'spawn' strategy for parallel sweeps"
            )
        generator = as_generator(sweep.base.seed)
        for index, params in enumerate(cells):
            cell_spec = sweep.base.with_overrides(params)
            for trial in range(sweep.trials):
                specs.append(cell_spec.replace(seed=generator))
                order.append((index, params, trial))
    else:
        root = random_seed_sequence(sweep.base.seed)
        children = root.spawn(len(cells) * sweep.trials)
        for index, params in enumerate(cells):
            cell_spec = sweep.base.with_overrides(params)
            for trial in range(sweep.trials):
                child = children[index * sweep.trials + trial]
                specs.append(cell_spec.replace(seed=child))
                order.append((index, params, trial))

    tasks = [(backend, spec) for spec in specs]
    if not parallel:
        results = [_run_task(task) for task in tasks]
    else:
        if executor == "thread":
            pool_cls = ThreadPoolExecutor
        elif executor == "process":
            pool_cls = ProcessPoolExecutor
        else:
            raise ConfigurationError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        with pool_cls(max_workers=max_workers) as pool:
            results = list(pool.map(_run_task, tasks))

    records = [
        SweepRecord(cell=index, params=params, trial=trial, result=result)
        for (index, params, trial), result in zip(order, results)
    ]
    return SweepResult(
        records=records,
        parameter_names=tuple(sweep.parameters),
        trials=sweep.trials,
    )
