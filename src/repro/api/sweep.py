"""Grid/zip parameter sweeps with Monte-Carlo replication over the API.

A :class:`Sweep` pairs a base :class:`~repro.api.spec.JobSpec` with named
parameter axes. :func:`run_sweep` expands the axes into cells (the cartesian
product in ``grid`` mode, position-wise in ``zip`` mode), replicates every
cell over ``trials`` independent runs, executes them on the sweep's backend —
serially or via a ``concurrent.futures`` pool — and returns a
:class:`SweepResult` whose records aggregate into report tables.

Seeding strategies
------------------
``"spawn"`` (default)
    Every (cell, trial) task receives its own :class:`numpy.random.SeedSequence`
    child derived from the base spec's seed, so results are deterministic and
    *identical* whether the sweep runs serially or in parallel.
``"shared"``
    A single generator is threaded through the cells in order — the historic
    behaviour of the hand-written experiment loops, preserved so the rewired
    figure/table drivers reproduce their pre-API output byte for byte. The
    stream is inherently sequential, so this strategy refuses parallelism.

The hot path
------------
Trial count is the knob Monte-Carlo users turn most, so :func:`run_sweep`
works hard to keep its cost sub-linear:

* **Plan hoisting.** A cell's scheme planning depends only on the cell's
  parameters whenever it consumes no randomness (every deterministic
  placement). ``run_sweep`` detects that with a probe build (comparing the
  probe generator's state before and after) and re-plans once per cell
  instead of once per trial, passing the frozen
  :class:`~repro.schemes.base.ExecutionPlan` through the spec. Random
  placements (BCC, randomized, Reed-Solomon's seed draw) are left alone —
  their plan *is* part of what a trial samples — so hoisting never changes
  a single bit of any result, on either engine and under either seeding
  strategy.
* **Trial batching** (``trial_batching=``). Under the spawn strategy a
  whole cell can be dispatched as *one* task that simulates every trial in
  one vectorized engine entry (:meth:`TimingSimBackend.run_batch
  <repro.api.backends.TimingSimBackend.run_batch>`). ``"auto"`` (default)
  batches exactly the cells where that is bit-identical to per-trial tasks
  (vectorized engine + draw-free planning); ``"always"`` also batches cells
  with random placements, freezing one placement per cell — each trial is
  then bit-identical to a solo run with the shared plan at the same spawned
  seed (the :func:`~repro.simulation.vectorized.simulate_job_batch`
  contract), but the trial average estimates the runtime *given* that
  placement rather than averaged over placements; ``"never"`` keeps
  per-trial tasks.
* **Summary records** (``record="summary"``). Each task compacts its
  :class:`~repro.api.result.RunResult` before returning it, so a process
  pool ships a few hundred bytes of aggregates per trial instead of
  pickling full per-iteration logs across the process boundary. Tables and
  aggregate metrics are unchanged; per-iteration access is dropped.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.backends import (
    Backend,
    BackendLike,
    SemanticSimBackend,
    TimingSimBackend,
    get_backend,
)
from repro.api.result import RunResult, validate_record
from repro.api.spec import JobSpec
from repro.exceptions import (
    AnalyticIntractableError,
    ConfigurationError,
    SimulationError,
)
from repro.schemes.base import ExecutionPlan, Scheme
from repro.utils.counting import CountingList
from repro.utils.rng import as_generator, random_seed_sequence
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = [
    "Sweep",
    "SweepRecord",
    "SweepResult",
    "TRIAL_BATCHING_MODES",
    "run_sweep",
]

#: Recognised ``trial_batching`` knob values (see the module docstring).
TRIAL_BATCHING_MODES = ("auto", "always", "never")


@dataclass(frozen=True)
class Sweep:
    """A declarative parameter sweep over one base job spec.

    Attributes
    ----------
    base:
        The spec every cell is derived from.
    parameters:
        Ordered mapping from override key (a :meth:`JobSpec.with_overrides`
        key such as ``"scheme"``, ``"scheme.load"``, ``"cluster"``,
        ``"num_iterations"``) to the sequence of values to sweep.
    mode:
        ``"grid"`` for the cartesian product of the axes (first axis
        outermost), ``"zip"`` for position-wise pairing of equal-length axes.
    trials:
        Monte-Carlo replications per cell.
    backend:
        Backend name, instance, or a bare ``spec -> RunResult`` callable.
        Pass a configured instance to pick a timing engine for the whole
        sweep (``backend=TimingSimBackend(engine="vectorized")``); individual
        cells can override it via a ``backend_options`` axis, e.g.
        ``{"backend_options": [{"engine": "loop"}, {"engine": "vectorized"}]}``.
    seed_strategy:
        ``"spawn"`` or ``"shared"`` (see the module docstring).
    """

    base: JobSpec
    parameters: Mapping[str, Sequence[object]] = field(default_factory=dict)
    mode: str = "grid"
    trials: int = 1
    backend: BackendLike = "timing"
    seed_strategy: str = "spawn"

    def __post_init__(self) -> None:
        check_positive_int(self.trials, "trials")
        if self.mode not in ("grid", "zip"):
            raise ConfigurationError(
                f"sweep mode must be 'grid' or 'zip', got {self.mode!r}"
            )
        if self.seed_strategy not in ("spawn", "shared"):
            raise ConfigurationError(
                "seed_strategy must be 'spawn' or 'shared', got "
                f"{self.seed_strategy!r}"
            )
        for key, values in self.parameters.items():
            if len(values) == 0:
                raise ConfigurationError(f"sweep axis {key!r} has no values")
        if self.mode == "zip" and self.parameters:
            lengths = {key: len(values) for key, values in self.parameters.items()}
            if len(set(lengths.values())) > 1:
                raise ConfigurationError(
                    f"zip-mode sweep axes must have equal lengths, got {lengths}"
                )

    # ------------------------------------------------------------------ #
    def cells(self) -> List[Dict[str, object]]:
        """The parameter assignment of every sweep cell, in execution order."""
        if not self.parameters:
            return [{}]
        keys = list(self.parameters)
        if self.mode == "zip":
            return [
                dict(zip(keys, values))
                for values in zip(*(self.parameters[key] for key in keys))
            ]
        return [
            dict(zip(keys, values))
            for values in itertools.product(
                *(self.parameters[key] for key in keys)
            )
        ]

    def specs(self) -> List[JobSpec]:
        """The derived spec of every cell (without per-task seeds applied)."""
        return [self.base.with_overrides(cell) for cell in self.cells()]


@dataclass(frozen=True)
class SweepRecord:
    """One executed (cell, trial) task."""

    cell: int
    params: Mapping[str, object]
    trial: int
    result: RunResult


def _format_value(value: object) -> object:
    """Compact display form of a sweep parameter value for table cells."""
    if isinstance(value, Scheme):
        return repr(value)
    if isinstance(value, Mapping):
        name = value.get("name", "?")
        options = ", ".join(
            f"{key}={option}" for key, option in value.items() if key != "name"
        )
        return f"{name}({options})" if options else str(name)
    if isinstance(value, (str, int, float, bool)):
        return value
    return type(value).__name__


@dataclass
class SweepResult:
    """All records of one sweep, plus tabulation helpers.

    The per-cell aggregation (the work behind :meth:`aggregate` and every
    :meth:`to_table` call) is cached, keyed on the record list's mutation
    counter — so repeated tabulation of a finished sweep costs one dict copy
    per cell, while *any* mutation of ``records`` (appends, but also
    in-place replacements a ``len()`` key would miss) recomputes.
    """

    records: List[SweepRecord] = field(default_factory=list)
    parameter_names: Tuple[str, ...] = ()
    trials: int = 1
    _aggregate_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.records, CountingList):
            self.records = CountingList(self.records)

    def __getstate__(self) -> dict:
        # Unpickling rebuilds the record list with a fresh mutation counter;
        # a carried cache could collide with a different history. Drop it.
        state = self.__dict__.copy()
        state["_aggregate_cache"] = None
        return state

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[SweepRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def cell_records(self, cell: int) -> List[SweepRecord]:
        """The trial records of one cell, in trial order."""
        return [record for record in self.records if record.cell == cell]

    @property
    def num_cells(self) -> int:
        """Number of distinct parameter assignments."""
        return 1 + max((record.cell for record in self.records), default=-1)

    def rows(self) -> List[Dict[str, object]]:
        """One dict per record: parameters, trial index, and the summary."""
        return [
            {
                **{key: _format_value(value) for key, value in record.params.items()},
                "trial": record.trial,
                **record.result.summary(),
            }
            for record in self.records
        ]

    def aggregate(
        self, metrics: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        """One dict per cell: parameters plus trial-averaged numeric metrics.

        ``metrics`` defaults to every numeric key appearing in the records'
        summaries, in first-seen order. The result is cached (see the class
        docstring); the key tracks both the record *list* and each result's
        own iteration-log mutation counter, so editing a result in place
        (e.g. appending or removing outcomes) recomputes too. Callers
        receive fresh per-row dict copies, so mutating a returned row never
        corrupts the cache.
        """
        metrics_key = None if metrics is None else tuple(metrics)
        version = getattr(self.records, "version", None)
        result_versions = tuple(
            getattr(record.result.iterations, "version", -1)
            for record in self.records
        )
        cache_key = (version, result_versions, metrics_key)
        cached = self._aggregate_cache
        if version is not None and cached is not None and cached[0] == cache_key:
            return [dict(row) for row in cached[1]]

        # One pass over the records: group by cell and collect summaries.
        by_cell: Dict[int, List[SweepRecord]] = {}
        summaries: Dict[int, List[dict]] = {}
        for record in self.records:
            by_cell.setdefault(record.cell, []).append(record)
            summaries.setdefault(record.cell, []).append(record.result.summary())
        if metrics is None:
            seen: Dict[str, None] = {}
            for cell_summaries in summaries.values():
                for summary in cell_summaries:
                    for key, value in summary.items():
                        if isinstance(value, (int, float)) and not isinstance(
                            value, bool
                        ):
                            seen.setdefault(key)
            metrics = list(seen)
        rows: List[Dict[str, object]] = []
        for cell in sorted(by_cell):
            records = by_cell[cell]
            row: Dict[str, object] = {
                key: _format_value(value) for key, value in records[0].params.items()
            }
            schemes = {record.result.scheme_name for record in records}
            if len(schemes) == 1:
                row.setdefault("scheme", next(iter(schemes)))
            row["trials"] = len(records)
            cell_summaries = summaries[cell]
            for metric in metrics:
                values = [s[metric] for s in cell_summaries if metric in s]
                if values:
                    row[metric] = float(np.mean(values))
            rows.append(row)
        if version is not None:
            self._aggregate_cache = (cache_key, rows)
        return [dict(row) for row in rows]

    def to_table(
        self,
        metrics: Optional[Sequence[str]] = None,
        *,
        title: str = "",
    ) -> TextTable:
        """Trial-averaged results as a monospace table, one row per cell."""
        rows = self.aggregate(metrics)
        if not rows:
            return TextTable(["(empty sweep)"], title=title)
        columns: Dict[str, None] = {}
        for row in rows:
            for key in row:
                columns.setdefault(key)
        table = TextTable(list(columns), title=title)
        for row in rows:
            table.add_row([row.get(column, "") for column in columns])
        return table


def _run_task(task: tuple) -> List[RunResult]:
    """Execute one sweep task — a single (cell, trial) run or a whole cell.

    Tasks are ``("trial", backend, spec, record)`` or ``("cell", backend,
    spec, seeds, record)``; either way a list of results comes back (one per
    trial), compacted when ``record="summary"`` so only aggregates cross a
    process pool's pickle boundary.
    """
    kind, backend, spec = task[0], task[1], task[2]
    try:
        if kind == "cell":
            seeds, record = task[3], task[4]
            return backend.run_batch(spec, seeds, record=record)
        record = task[3]
        result = backend.run(spec)
        if record == "summary":
            result = result.compact()
        return [result]
    except AnalyticIntractableError as error:
        # Surface which sweep cell fell outside the closed-form regime —
        # with dozens of cells, "which configuration?" is the question.
        raise AnalyticIntractableError(
            f"sweep cell (scheme={spec.scheme!r}, "
            f"serialize_master_link={spec.serialize_master_link}) has no "
            f"closed-form runtime: {error}"
        ) from error
    except SimulationError as error:
        # Same courtesy for simulation failures: name the cell. The usual
        # cause is a dynamic cluster whose churn removed the last holders of
        # a data unit; the churn ablation driver (repro.experiments.churn)
        # reports such cells as FAILED instead of aborting.
        raise SimulationError(
            f"sweep cell (scheme={spec.scheme!r}) could not complete: {error}"
        ) from error


def _probe_rng_free_plan(spec: JobSpec) -> Optional[ExecutionPlan]:
    """The spec's execution plan if planning consumes no randomness, else None.

    Builds the plan with a probe generator and compares the generator's
    state before and after: an unchanged state proves the placement cannot
    depend on the trial's seed, so one plan can stand in for every trial —
    and for every seeding strategy — without changing a single draw. Random
    placements (and anything that fails to plan; the real run will surface
    the error with full context) return ``None``.
    """
    if spec.cluster is None or isinstance(spec.scheme, ExecutionPlan):
        return None
    try:
        scheme = spec.resolve_scheme()
        # reprolint: allow[RNG001] reason=state-probe generator; draws are discarded and the unchanged-state check is the whole point
        probe = np.random.default_rng(0)
        state = probe.bit_generator.state
        plan = scheme.build_feasible_plan(
            spec.resolved_num_units, spec.cluster.num_workers, probe
        )
        if probe.bit_generator.state != state:
            return None
        return plan
    except Exception:
        return None


def _hoist_cell_plan(backend: Backend, spec: JobSpec, trials: int) -> JobSpec:
    """Per-cell plan hoisting: re-plan once per cell when provably safe.

    Only the simulation backends understand a plan-carrying spec, and
    hoisting only pays with several trials; beyond that the safety argument
    is :func:`_probe_rng_free_plan`'s — draw-free planning means the hoisted
    spec runs bit-identically to the original on both engines, under both
    seeding strategies.
    """
    if trials < 2 or not isinstance(backend, (TimingSimBackend, SemanticSimBackend)):
        return spec
    plan = _probe_rng_free_plan(spec)
    if plan is None:
        return spec
    return spec.replace(scheme=plan)


def run_sweep(
    sweep: Sweep,
    *,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    record: str = "full",
    trial_batching: str = "auto",
) -> SweepResult:
    """Execute every (cell, trial) task of a sweep and collect the records.

    Parameters
    ----------
    sweep:
        The sweep to run.
    max_workers:
        ``None``/``0``/``1`` runs serially; anything larger fans the tasks
        out over a ``concurrent.futures`` pool. Results are identical either
        way under the default ``"spawn"`` seed strategy.
    executor:
        ``"thread"`` (default) or ``"process"``. The simulation backends are
        CPU-bound Python loops that hold the GIL, so real speed-up on a
        multi-core machine needs ``"process"`` — which requires the spec and
        backend to be picklable (named backends and config-mapping schemes
        are; custom runner closures usually are not). Threads still help
        when the backend itself waits on other processes or IO (e.g.
        :class:`~repro.api.backends.MultiprocessBackend`).
    record:
        ``"full"`` (default) keeps every result's per-iteration log;
        ``"summary"`` compacts each result to its aggregate statistics in
        the worker (see :meth:`RunResult.compact
        <repro.api.result.RunResult.compact>`), so parallel sweeps stop
        pickling iteration logs across process boundaries. Tables and
        aggregate metrics are identical in both modes.
    trial_batching:
        ``"auto"`` (default), ``"always"``, or ``"never"`` — whether whole
        cells are dispatched as single trial-batched engine entries instead
        of one task per (cell, trial). See the module docstring: ``"auto"``
        batches exactly when bit-identical to per-trial execution,
        ``"always"`` additionally freezes one random placement per cell.

    Examples
    --------
    Sweep the computational load over one base spec and read the records
    back in cell order:

    >>> from repro.api import JobSpec, Sweep, run_sweep
    >>> from repro.cluster.spec import ClusterSpec
    >>> from repro.stragglers.models import DeterministicDelay
    >>> cluster = ClusterSpec.homogeneous(10, DeterministicDelay(0.01))
    >>> base = JobSpec(
    ...     scheme={"name": "bcc", "load": 5},
    ...     cluster=cluster,
    ...     num_units=20,
    ...     num_iterations=2,
    ...     seed=0,
    ... )
    >>> result = run_sweep(Sweep(base, parameters={"scheme.load": [5, 10]}))
    >>> len(result)
    2
    >>> [record.params["scheme.load"] for record in result]
    [5, 10]

    The same sweep on the closed-form analytic backend never simulates an
    iteration (and is therefore O(1) in ``num_iterations``):

    >>> analytic = run_sweep(
    ...     Sweep(base, parameters={"scheme.load": [5, 10]}, backend="analytic")
    ... )
    >>> [record.result.backend for record in analytic]
    ['analytic', 'analytic']
    """
    validate_record(record)
    if trial_batching not in TRIAL_BATCHING_MODES:
        raise ConfigurationError(
            f"unknown trial_batching mode {trial_batching!r}; expected one "
            f"of {list(TRIAL_BATCHING_MODES)}"
        )
    backend = get_backend(sweep.backend)
    cells = sweep.cells()
    parallel = max_workers is not None and max_workers > 1
    # A hoisted plan carries scheme-defined closures that may not pickle;
    # keep specs pickle-clean when tasks cross a process boundary. (Results
    # are unaffected either way: hoisting only happens when it cannot
    # change a draw, and cell tasks re-plan inside the worker.)
    hoist_ok = not (parallel and executor == "process")

    tasks: List[tuple] = []
    layout: List[List[Tuple[int, Mapping[str, object], int]]] = []
    if sweep.seed_strategy == "shared":
        if parallel:
            raise ConfigurationError(
                "the 'shared' seed strategy threads one generator through the "
                "cells sequentially and cannot run in parallel; use the "
                "'spawn' strategy for parallel sweeps"
            )
        generator = as_generator(sweep.base.seed)
        for index, params in enumerate(cells):
            cell_spec = sweep.base.with_overrides(params)
            if hoist_ok:
                cell_spec = _hoist_cell_plan(backend, cell_spec, sweep.trials)
            for trial in range(sweep.trials):
                tasks.append(("trial", backend, cell_spec.replace(seed=generator), record))
                layout.append([(index, params, trial)])
    else:
        root = random_seed_sequence(sweep.base.seed)
        children = root.spawn(len(cells) * sweep.trials)
        for index, params in enumerate(cells):
            cell_spec = sweep.base.with_overrides(params)
            cell_children = children[index * sweep.trials : (index + 1) * sweep.trials]
            if _batch_cell(backend, cell_spec, sweep.trials, trial_batching):
                tasks.append(("cell", backend, cell_spec, list(cell_children), record))
                layout.append(
                    [(index, params, trial) for trial in range(sweep.trials)]
                )
                continue
            if hoist_ok:
                cell_spec = _hoist_cell_plan(backend, cell_spec, sweep.trials)
            for trial, child in enumerate(cell_children):
                tasks.append(("trial", backend, cell_spec.replace(seed=child), record))
                layout.append([(index, params, trial)])

    if not parallel:
        results = [_run_task(task) for task in tasks]
    else:
        if executor == "thread":
            pool_cls = ThreadPoolExecutor
        elif executor == "process":
            pool_cls = ProcessPoolExecutor
        else:
            raise ConfigurationError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        with pool_cls(max_workers=max_workers) as pool:
            results = list(pool.map(_run_task, tasks))

    records = [
        SweepRecord(cell=index, params=params, trial=trial, result=result)
        for task_layout, task_results in zip(layout, results)
        for (index, params, trial), result in zip(task_layout, task_results)
    ]
    return SweepResult(
        records=records,
        parameter_names=tuple(sweep.parameters),
        trials=sweep.trials,
    )


def _batch_cell(backend: Backend, spec: JobSpec, trials: int, trial_batching: str) -> bool:
    """Whether one cell should run as a single trial-batched task.

    ``"never"`` and single-trial cells keep per-trial tasks; otherwise the
    backend must support trial batching for this spec (a vectorized-engine
    :class:`~repro.api.backends.TimingSimBackend`). ``"always"`` then
    batches unconditionally (one placement per cell for random schemes —
    the documented :func:`~repro.simulation.vectorized.simulate_job_batch`
    semantics) while ``"auto"`` additionally demands draw-free planning, the
    condition under which batching is bit-identical to per-trial execution.
    """
    if trial_batching == "never" or trials < 2:
        return False
    if not isinstance(backend, TimingSimBackend):
        return False
    try:
        if not backend.supports_trial_batching(spec):
            return False
    except ConfigurationError:
        return False
    if trial_batching == "always":
        return True
    return _probe_rng_free_plan(spec) is not None
