"""One front door for experiments: ``JobSpec`` → ``Backend`` → ``RunResult``.

The API layer unifies the three historical entry points
(:func:`~repro.simulation.job.simulate_job`,
:func:`~repro.simulation.job.simulate_training_run`,
:func:`~repro.runtime.job.run_distributed_job`) behind a declarative job
specification and interchangeable execution backends — including the
closed-form :class:`~repro.api.backends.AnalyticBackend`, which estimates
the same metrics without simulating at all — and builds the parameter-sweep
engine every figure/table driver, example, and the CLI run through.

Quickstart
----------
>>> from repro.api import JobSpec, Sweep, run, run_sweep
>>> from repro.experiments import ec2_like_cluster
>>> spec = JobSpec(
...     scheme={"name": "bcc", "load": 10},
...     cluster=ec2_like_cluster(50),
...     num_units=50, num_iterations=10, unit_size=100,
...     serialize_master_link=False, seed=0,
... )
>>> result = run(spec)                      # timing backend by default
>>> sweep = Sweep(spec, parameters={"scheme.load": [5, 10, 25]}, trials=3)
>>> table = run_sweep(sweep).to_table()
"""

from repro.api.spec import JobSpec, Workload
from repro.api.fingerprint import canonical_value, fingerprint_spec
from repro.api.result import RECORD_MODES, RunResult, validate_record
from repro.api.backends import (
    Backend,
    BackendLike,
    TimingSimBackend,
    SemanticSimBackend,
    MultiprocessBackend,
    AnalyticBackend,
    available_backends,
    get_backend,
    run,
)
from repro.api.sweep import Sweep, SweepRecord, SweepResult, run_sweep

__all__ = [
    "JobSpec",
    "Workload",
    "canonical_value",
    "fingerprint_spec",
    "RECORD_MODES",
    "RunResult",
    "validate_record",
    "Backend",
    "BackendLike",
    "TimingSimBackend",
    "SemanticSimBackend",
    "MultiprocessBackend",
    "AnalyticBackend",
    "available_backends",
    "get_backend",
    "run",
    "Sweep",
    "SweepRecord",
    "SweepResult",
    "run_sweep",
]
