"""repro — a reproduction of "Near-Optimal Straggler Mitigation for Distributed
Gradient Methods" (Li, Mousavi Kalan, Avestimehr, Soltanolkotabi).

The package implements the Batched Coupon's Collector (BCC) scheme, every
baseline the paper compares against (uncoded, simple randomized, cyclic
repetition / Reed-Solomon / fractional repetition gradient codes, the
heterogeneous LB and generalized-BCC strategies), the analytical results
(Theorems 1 and 2, the coupon-collector machinery), a discrete-event cluster
simulator, a real multiprocessing runtime, and the experiment drivers that
regenerate every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import BCCScheme, UncodedScheme, simulate_job
>>> from repro.experiments import ec2_like_cluster
>>> cluster = ec2_like_cluster(num_workers=50)
>>> bcc = simulate_job(BCCScheme(load=10), cluster, num_units=50,
...                    num_iterations=10, rng=0, unit_size=100,
...                    serialize_master_link=False)
>>> uncoded = simulate_job(UncodedScheme(), cluster, num_units=50,
...                        num_iterations=10, rng=0, unit_size=100,
...                        serialize_master_link=False)
>>> bcc.total_time < uncoded.total_time
True
"""

from repro.datasets import Dataset, make_paper_logistic_data, LogisticDataConfig
from repro.gradients import LogisticLoss, LeastSquaresLoss, RidgeLoss, SoftmaxLoss, HuberLoss
from repro.optim import (
    GradientDescent,
    NesterovAcceleratedGradient,
    HeavyBallMomentum,
    ConstantSchedule,
    train,
)
from repro.schemes import (
    Scheme,
    ExecutionPlan,
    BCCScheme,
    UncodedScheme,
    SimpleRandomizedScheme,
    CyclicRepetitionScheme,
    ReedSolomonScheme,
    FractionalRepetitionScheme,
    GeneralizedBCCScheme,
    LoadBalancedScheme,
    register_scheme,
    available_schemes,
    scheme_from_config,
    make_scheme,
)
from repro.cluster import ClusterSpec, WorkerSpec, solve_p2_allocation
from repro.stragglers import (
    ShiftedExponentialDelay,
    ExponentialDelay,
    DeterministicDelay,
    ParetoDelay,
    BimodalStragglerDelay,
    LinearCommunicationModel,
)
from repro.simulation import simulate_iteration, simulate_job, simulate_training_run, distributed_gradient
from repro.runtime import run_distributed_job
from repro.api import (
    JobSpec,
    Workload,
    RunResult,
    Backend,
    TimingSimBackend,
    SemanticSimBackend,
    MultiprocessBackend,
    run,
    Sweep,
    SweepResult,
    run_sweep,
)
from repro.analysis import (
    bcc_recovery_threshold,
    lower_bound_recovery_threshold,
    cyclic_repetition_recovery_threshold,
    randomized_recovery_threshold,
    theorem1_bounds,
    theorem2_bounds,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # datasets
    "Dataset",
    "make_paper_logistic_data",
    "LogisticDataConfig",
    # gradients
    "LogisticLoss",
    "LeastSquaresLoss",
    "RidgeLoss",
    "SoftmaxLoss",
    "HuberLoss",
    # optimizers
    "GradientDescent",
    "NesterovAcceleratedGradient",
    "HeavyBallMomentum",
    "ConstantSchedule",
    "train",
    # schemes
    "Scheme",
    "ExecutionPlan",
    "BCCScheme",
    "UncodedScheme",
    "SimpleRandomizedScheme",
    "CyclicRepetitionScheme",
    "ReedSolomonScheme",
    "FractionalRepetitionScheme",
    "GeneralizedBCCScheme",
    "LoadBalancedScheme",
    "register_scheme",
    "available_schemes",
    "scheme_from_config",
    "make_scheme",
    # unified API
    "JobSpec",
    "Workload",
    "RunResult",
    "Backend",
    "TimingSimBackend",
    "SemanticSimBackend",
    "MultiprocessBackend",
    "run",
    "Sweep",
    "SweepResult",
    "run_sweep",
    # cluster
    "ClusterSpec",
    "WorkerSpec",
    "solve_p2_allocation",
    # stragglers
    "ShiftedExponentialDelay",
    "ExponentialDelay",
    "DeterministicDelay",
    "ParetoDelay",
    "BimodalStragglerDelay",
    "LinearCommunicationModel",
    # simulation & runtime
    "simulate_iteration",
    "simulate_job",
    "simulate_training_run",
    "distributed_gradient",
    "run_distributed_job",
    # analysis
    "bcc_recovery_threshold",
    "lower_bound_recovery_threshold",
    "cyclic_repetition_recovery_threshold",
    "randomized_recovery_threshold",
    "theorem1_bounds",
    "theorem2_bounds",
]
