"""Least-squares and ridge-regression losses.

Linear models are the canonical workload of the gradient-coding literature
(matrix multiplication in disguise), so the library ships them alongside the
paper's logistic model. Both keep partial gradients additive across examples.
"""

from __future__ import annotations

import numpy as np

from repro.gradients.base import GradientModel
from repro.utils.validation import check_nonnegative

__all__ = ["LeastSquaresLoss", "RidgeLoss"]


class LeastSquaresLoss(GradientModel):
    """Squared-error loss ``0.5 (x^T w - y)^2`` per example."""

    @property
    def name(self) -> str:
        return "least-squares"

    def loss_per_example(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        residuals = features @ weights - labels
        return 0.5 * residuals**2

    def per_example_gradients(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        residuals = features @ weights - labels
        return residuals[:, None] * features

    def gradient_sum(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        residuals = features @ weights - labels
        return features.T @ residuals

    def predict(self, weights: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Return the linear predictions ``X w``."""
        return features @ weights

    def exact_solution(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Return the least-squares solution via ``numpy.linalg.lstsq``.

        Convenient ground truth for convergence tests.
        """
        solution, *_ = np.linalg.lstsq(features, labels, rcond=None)
        return solution


class RidgeLoss(LeastSquaresLoss):
    """Squared-error loss with an L2 penalty shared across examples.

    The per-example loss is ``0.5 (x^T w - y)^2 + (l2/2) ||w||^2`` so the sum
    of partial gradients over any example subset remains well defined.
    """

    def __init__(self, l2: float = 1e-3) -> None:
        self.l2 = check_nonnegative(l2, "l2")

    @property
    def name(self) -> str:
        return "ridge"

    def loss_per_example(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        base = super().loss_per_example(weights, features, labels)
        return base + 0.5 * self.l2 * float(weights @ weights)

    def per_example_gradients(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        base = super().per_example_gradients(weights, features, labels)
        return base + self.l2 * weights[None, :]

    def gradient_sum(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        base = super().gradient_sum(weights, features, labels)
        return base + features.shape[0] * self.l2 * weights

    def exact_solution(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Return the ridge solution ``(X^T X + m*l2 I)^{-1} X^T y``.

        The ``m * l2`` factor matches the per-example formulation above,
        where every example contributes ``l2 * w`` to the summed gradient.
        """
        m, p = features.shape
        gram = features.T @ features + m * self.l2 * np.eye(p)
        return np.linalg.solve(gram, features.T @ labels)

    def __repr__(self) -> str:
        return f"RidgeLoss(l2={self.l2!r})"
