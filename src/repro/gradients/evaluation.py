"""Free-function helpers for evaluating gradients on a :class:`Dataset`.

These wrap the :class:`~repro.gradients.base.GradientModel` methods with
dataset/index-set plumbing, which is how the schemes and the simulator call
them. Keeping them as functions (rather than methods on ``Dataset``) keeps the
dataset container dependency-free.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.datasets.base import Dataset
from repro.gradients.base import GradientModel

__all__ = [
    "full_gradient",
    "summed_partial_gradient",
    "per_example_gradients",
    "classification_error",
    "empirical_risk",
]


def full_gradient(
    model: GradientModel, dataset: Dataset, weights: np.ndarray
) -> np.ndarray:
    """The exact full gradient ``(1/m) sum_j g_j(w)`` over the whole dataset.

    This is the ground truth every scheme's decoded gradient is compared to.
    """
    return model.gradient(weights, dataset.features, dataset.labels)


def summed_partial_gradient(
    model: GradientModel,
    dataset: Dataset,
    weights: np.ndarray,
    indices: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Sum of partial gradients over ``indices`` — a BCC worker's message (Eq. 12)."""
    features, labels = dataset.rows(indices)
    return model.gradient_sum(weights, features, labels)


def per_example_gradients(
    model: GradientModel,
    dataset: Dataset,
    weights: np.ndarray,
    indices: Optional[Sequence[int] | np.ndarray] = None,
) -> np.ndarray:
    """Matrix of partial gradients ``g_j(w)`` for ``j`` in ``indices`` (or all)."""
    if indices is None:
        features, labels = dataset.features, dataset.labels
    else:
        features, labels = dataset.rows(indices)
    return model.per_example_gradients(weights, features, labels)


def empirical_risk(
    model: GradientModel, dataset: Dataset, weights: np.ndarray
) -> float:
    """Mean loss of ``weights`` on ``dataset``."""
    return model.loss(weights, dataset.features, dataset.labels)


def classification_error(
    model: GradientModel, dataset: Dataset, weights: np.ndarray
) -> float:
    """Fraction of misclassified examples (for models with a ``predict``)."""
    predictions = model.predict(weights, dataset.features)
    if predictions is None:
        raise ConfigurationError(f"model {model.name!r} does not support prediction")
    return float(np.mean(predictions != dataset.labels))
