"""Huber (smoothed absolute-error) regression loss.

Included as a robust-regression workload for the examples and ablations; the
per-example gradient remains additive so every scheme applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.gradients.base import GradientModel
from repro.utils.validation import check_in_range

__all__ = ["HuberLoss"]


class HuberLoss(GradientModel):
    """Huber loss with transition point ``delta > 0``.

    ``loss(r) = 0.5 r^2`` for ``|r| <= delta`` and
    ``delta (|r| - delta/2)`` otherwise, where ``r = x^T w - y``.
    """

    def __init__(self, delta: float = 1.0) -> None:
        self.delta = check_in_range(delta, "delta", low=0.0, inclusive=False)

    @property
    def name(self) -> str:
        return "huber"

    def loss_per_example(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        residuals = features @ weights - labels
        absolute = np.abs(residuals)
        quadratic = 0.5 * residuals**2
        linear = self.delta * (absolute - 0.5 * self.delta)
        return np.where(absolute <= self.delta, quadratic, linear)

    def per_example_gradients(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        residuals = features @ weights - labels
        clipped = np.clip(residuals, -self.delta, self.delta)
        return clipped[:, None] * features

    def gradient_sum(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        residuals = features @ weights - labels
        clipped = np.clip(residuals, -self.delta, self.delta)
        return features.T @ clipped

    def predict(self, weights: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Return the linear predictions ``X w``."""
        return features @ weights

    def __repr__(self) -> str:
        return f"HuberLoss(delta={self.delta!r})"
