"""Multiclass softmax (cross-entropy) loss.

Weights are stored flattened as a single vector of length ``num_classes * p``
so the distributed machinery — which treats a partial gradient as one flat
vector per example — works unchanged for multiclass problems.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.gradients.base import GradientModel
from repro.utils.validation import check_positive_int

__all__ = ["SoftmaxLoss"]


class SoftmaxLoss(GradientModel):
    """Softmax regression over ``num_classes`` classes with integer labels.

    Parameters
    ----------
    num_classes:
        Number of classes ``C >= 2``. Labels must be integers in
        ``[0, num_classes)`` (stored as floats in :class:`~repro.datasets.Dataset`).
    """

    def __init__(self, num_classes: int) -> None:
        self.num_classes = check_positive_int(num_classes, "num_classes")
        if self.num_classes < 2:
            raise ConfigurationError("num_classes must be at least 2")

    @property
    def name(self) -> str:
        return f"softmax-{self.num_classes}"

    # ------------------------------------------------------------------ #
    def _unflatten(self, weights: np.ndarray, num_features: int) -> np.ndarray:
        expected = self.num_classes * num_features
        if weights.shape[0] != expected:
            raise DataError(
                f"weights must have length num_classes * p = {expected}, "
                f"got {weights.shape[0]}"
            )
        return weights.reshape(self.num_classes, num_features)

    def _probabilities(self, weight_matrix: np.ndarray, features: np.ndarray) -> np.ndarray:
        logits = features @ weight_matrix.T  # (k, C)
        logits = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def _one_hot(self, labels: np.ndarray) -> np.ndarray:
        classes = labels.astype(int)
        if classes.min() < 0 or classes.max() >= self.num_classes:
            raise DataError(
                f"labels must be integers in [0, {self.num_classes}), "
                f"got range [{classes.min()}, {classes.max()}]"
            )
        one_hot = np.zeros((classes.shape[0], self.num_classes), dtype=float)
        one_hot[np.arange(classes.shape[0]), classes] = 1.0
        return one_hot

    # ------------------------------------------------------------------ #
    def loss_per_example(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        weight_matrix = self._unflatten(weights, features.shape[1])
        probabilities = self._probabilities(weight_matrix, features)
        classes = labels.astype(int)
        picked = probabilities[np.arange(features.shape[0]), classes]
        return -np.log(np.clip(picked, 1e-300, None))

    def per_example_gradients(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        weight_matrix = self._unflatten(weights, features.shape[1])
        probabilities = self._probabilities(weight_matrix, features)
        error = probabilities - self._one_hot(labels)  # (k, C)
        # Gradient for example j is outer(error_j, x_j), flattened to (C*p,).
        grads = error[:, :, None] * features[:, None, :]  # (k, C, p)
        return grads.reshape(features.shape[0], -1)

    def gradient_sum(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        weight_matrix = self._unflatten(weights, features.shape[1])
        probabilities = self._probabilities(weight_matrix, features)
        error = probabilities - self._one_hot(labels)
        return (error.T @ features).reshape(-1)

    # ------------------------------------------------------------------ #
    def predict(self, weights: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Return the most probable class index per row."""
        weight_matrix = self._unflatten(weights, features.shape[1])
        return self._probabilities(weight_matrix, features).argmax(axis=1).astype(float)

    def initial_weights(self, num_features: int) -> np.ndarray:
        return np.zeros(self.num_classes * num_features, dtype=float)

    def __repr__(self) -> str:
        return f"SoftmaxLoss(num_classes={self.num_classes})"
