"""The :class:`GradientModel` interface.

A *partial gradient* ``g_j(w) = grad of loss(x_j; w)`` is the object the
paper's workers compute and communicate. The empirical risk is the average
``L(w) = (1/m) sum_j loss(x_j; w)`` and the GD update uses its gradient
``(1/m) sum_j g_j(w)`` (paper Eq. 1).

The interface separates the two distributed primitives explicitly:

* :meth:`gradient_sum` — the *sum* of partial gradients over a row subset,
  which is exactly the single message a BCC/uncoded worker sends (Eq. 12);
* :meth:`per_example_gradients` — the stacked matrix of individual partial
  gradients, which is what a simple-randomized worker sends one-by-one and
  what coded schemes combine linearly.

Both are implemented once in terms of an abstract per-example residual so
concrete losses only supply vectorized formulas.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = ["GradientModel"]


class GradientModel(abc.ABC):
    """Abstract base class for differentiable empirical-risk models.

    Concrete subclasses implement :meth:`loss_per_example` and
    :meth:`per_example_gradients`; the remaining methods are derived.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment reports."""

    @abc.abstractmethod
    def loss_per_example(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Return the vector of per-example losses ``loss(x_j; w)``."""

    @abc.abstractmethod
    def per_example_gradients(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Return the ``(k, p)`` matrix whose row ``j`` is ``g_j(w)``."""

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def loss(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> float:
        """Mean loss over the supplied examples (the empirical risk)."""
        return float(np.mean(self.loss_per_example(weights, features, labels)))

    def gradient_sum(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Sum of partial gradients over the supplied examples.

        This is the worker message of the BCC and uncoded schemes. The
        default implementation sums :meth:`per_example_gradients`; subclasses
        override it with a fused matrix expression that never materialises
        the ``(k, p)`` per-example matrix.
        """
        return self.per_example_gradients(weights, features, labels).sum(axis=0)

    def gradient(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Mean gradient ``(1/k) sum_j g_j(w)`` over the supplied examples."""
        k = features.shape[0]
        return self.gradient_sum(weights, features, labels) / float(k)

    # ------------------------------------------------------------------ #
    # Prediction helpers (optional, classification models override)
    # ------------------------------------------------------------------ #
    def predict(
        self, weights: np.ndarray, features: np.ndarray
    ) -> Optional[np.ndarray]:
        """Return model predictions, or ``None`` if not meaningful."""
        return None

    def initial_weights(self, num_features: int) -> np.ndarray:
        """Default starting point for optimisation (the zero vector)."""
        return np.zeros(num_features, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
