"""Loss functions and vectorized gradient kernels.

The distributed-GD schemes only ever need three primitives from a model:

* the loss of a weight vector on a set of examples,
* the *sum* of the per-example gradients over an index set (what a BCC or
  uncoded worker sends), and
* the full matrix of per-example gradients (what a simple-randomized worker
  sends, and what coded schemes linearly combine).

Every model implements :class:`GradientModel`, with all kernels expressed as
matrix operations (no per-example Python loops).
"""

from repro.gradients.base import GradientModel
from repro.gradients.logistic import LogisticLoss
from repro.gradients.least_squares import LeastSquaresLoss, RidgeLoss
from repro.gradients.softmax import SoftmaxLoss
from repro.gradients.huber import HuberLoss
from repro.gradients.evaluation import (
    full_gradient,
    summed_partial_gradient,
    per_example_gradients,
    classification_error,
)

__all__ = [
    "GradientModel",
    "LogisticLoss",
    "LeastSquaresLoss",
    "RidgeLoss",
    "SoftmaxLoss",
    "HuberLoss",
    "full_gradient",
    "summed_partial_gradient",
    "per_example_gradients",
    "classification_error",
]
