"""Logistic-regression loss with ``{-1, +1}`` labels.

This is the model the paper trains in its EC2 experiments (Section III-C):
``loss(x_j, y_j; w) = log(1 + exp(-y_j x_j^T w))`` plus an optional L2 term.
All kernels are expressed with matrix products and `numpy` ufuncs.
"""

from __future__ import annotations

import numpy as np

from repro.gradients.base import GradientModel
from repro.utils.validation import check_nonnegative

__all__ = ["LogisticLoss"]


def _log1pexp(z: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(z))`` (softplus)."""
    out = np.empty_like(z, dtype=float)
    positive = z > 0
    out[positive] = z[positive] + np.log1p(np.exp(-z[positive]))
    out[~positive] = np.log1p(np.exp(z[~positive]))
    return out


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class LogisticLoss(GradientModel):
    """Binary logistic regression with labels in ``{-1, +1}``.

    Parameters
    ----------
    l2:
        Optional L2 regularisation strength; the per-example loss becomes
        ``log(1+exp(-y x.w)) + (l2/2) ||w||^2`` so that partial gradients
        remain additive across examples (each example carries its share of
        the regulariser), which is what coded aggregation requires.
    """

    def __init__(self, l2: float = 0.0) -> None:
        self.l2 = check_nonnegative(l2, "l2")

    @property
    def name(self) -> str:
        return "logistic"

    # ------------------------------------------------------------------ #
    def loss_per_example(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        margins = labels * (features @ weights)
        losses = _log1pexp(-margins)
        if self.l2:
            losses = losses + 0.5 * self.l2 * float(weights @ weights)
        return losses

    def per_example_gradients(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        margins = labels * (features @ weights)
        # d/dw log(1+exp(-y x.w)) = -y * sigmoid(-y x.w) * x
        coeffs = -labels * _sigmoid(-margins)
        grads = coeffs[:, None] * features
        if self.l2:
            grads = grads + self.l2 * weights[None, :]
        return grads

    def gradient_sum(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        margins = labels * (features @ weights)
        coeffs = -labels * _sigmoid(-margins)
        grad = features.T @ coeffs
        if self.l2:
            grad = grad + features.shape[0] * self.l2 * weights
        return grad

    # ------------------------------------------------------------------ #
    def predict(self, weights: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Return hard ``{-1, +1}`` predictions."""
        return np.where(features @ weights >= 0.0, 1.0, -1.0)

    def predict_proba(self, weights: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Return ``P(y = +1 | x)`` for each row of ``features``."""
        return _sigmoid(features @ weights)

    def __repr__(self) -> str:
        return f"LogisticLoss(l2={self.l2!r})"
