"""End-to-end convergence contract: real coded GD under injected preemption.

The strongest claim the runtime can make: spawn real worker processes, inject
a preemption scenario into them, and the trained weights still match the
serial (centralised) gradient-descent reference bit-close — straggler coding
changes *when* gradients arrive, never *what* the master aggregates.

Every test here runs through the public front door
(:func:`repro.api.run` with ``backend="multiprocess"`` and a
:class:`~repro.cluster.dynamic.DynamicClusterSpec`), so the whole stack is on
the hook: scheme resolution, fault-schedule construction, worker spawning,
injected sleeps and vacancies, aggregation, and the optimizer loop.

The scenario seeds are pinned to timelines each scheme tolerates (searched
offline, asserted here): the uncoded scheme gets a preemption process that
happens to draw no vacancies (it tolerates none — but still runs under the
injection machinery), while the coded schemes face real vacancies their
redundancy covers.

Marked ``e2e``: tier-1 deselects this module (see ``pyproject.toml``); the
CI ``validation`` job runs it with ``-m e2e``.
"""

import numpy as np
import pytest

from repro.api import JobSpec, Workload, run
from repro.cluster.dynamic import DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.datasets.batching import make_batches
from repro.datasets.synthetic import make_linear_regression_data
from repro.gradients.least_squares import LeastSquaresLoss
from repro.optim.gradient_descent import GradientDescent
from repro.optim.trainer import train
from repro.stragglers.models import DeterministicDelay

pytestmark = [pytest.mark.e2e, pytest.mark.runtime]

NUM_WORKERS = 4
NUM_UNITS = 4
UNIT_SIZE = 3
NUM_ITERATIONS = 6


def preempt_cluster(scenario_seed: int, preempt_probability: float) -> DynamicClusterSpec:
    """A 4-worker cluster whose slots are preempted spot-instance style."""
    return DynamicClusterSpec(
        ClusterSpec.homogeneous(NUM_WORKERS, DeterministicDelay(0.001)),
        dynamics={
            "name": "preempt",
            "preempt_probability": preempt_probability,
            "recovery_iterations": 1,
        },
        seed=scenario_seed,
    )


def build_workload() -> Workload:
    dataset, _ = make_linear_regression_data(NUM_UNITS * UNIT_SIZE, 4, seed=7)
    return Workload(
        model=LeastSquaresLoss(),
        dataset=dataset,
        optimizer=GradientDescent(0.05),
        unit_spec=make_batches(NUM_UNITS * UNIT_SIZE, UNIT_SIZE),
    )


class TestConvergenceContract:
    # (scheme config, scenario seed, preempt probability, job seed): seeds
    # pinned so the scheme's straggler tolerance covers the drawn vacancies.
    CASES = [
        pytest.param({"name": "uncoded"}, 2, 0.05, 0, id="uncoded"),
        pytest.param({"name": "cyclic-repetition", "load": 3}, 1, 0.2, 0, id="cyclic"),
        pytest.param({"name": "bcc", "load": 3}, 1, 0.2, 0, id="bcc"),
    ]

    @pytest.mark.parametrize("scheme, scenario_seed, probability, job_seed", CASES)
    def test_real_run_matches_serial_reference(
        self, scheme, scenario_seed, probability, job_seed
    ):
        workload = build_workload()
        spec = JobSpec(
            scheme=scheme,
            cluster=preempt_cluster(scenario_seed, probability),
            num_iterations=NUM_ITERATIONS,
            seed=job_seed,
            workload=workload,
        )
        result = run(spec, backend="multiprocess")

        reference = train(
            workload.model,
            workload.dataset,
            GradientDescent(0.05),
            num_iterations=NUM_ITERATIONS,
        )
        np.testing.assert_allclose(
            result.training.weights, reference.weights, atol=1e-8
        )
        assert result.num_iterations == NUM_ITERATIONS
        assert len(str(result.extras["fault_fingerprint"])) == 64

    @pytest.mark.parametrize(
        "scheme, scenario_seed, probability, job_seed",
        [CASES[1]],  # only the vacancy-tolerant coded case
    )
    def test_vacancies_actually_happened(
        self, scheme, scenario_seed, probability, job_seed
    ):
        """The coded case is a real test: its timeline vacates slots."""
        workload = build_workload()
        spec = JobSpec(
            scheme=scheme,
            cluster=preempt_cluster(scenario_seed, probability),
            num_iterations=NUM_ITERATIONS,
            seed=job_seed,
            workload=workload,
        )
        result = run(spec, backend="multiprocess")
        scheduled = result.extras["scheduled_workers"]
        assert len(scheduled) == NUM_ITERATIONS
        assert min(scheduled) < NUM_WORKERS  # at least one vacant slot
        assert max(scheduled) == NUM_WORKERS  # and full-strength iterations

    def test_respawn_mode_converges_too(self):
        """Kill-and-respawn recovery trains the same weights as mute mode."""
        workload = build_workload()
        spec = JobSpec(
            scheme={"name": "cyclic-repetition", "load": 3},
            cluster=preempt_cluster(1, 0.2),
            num_iterations=NUM_ITERATIONS,
            seed=0,
            workload=workload,
            backend_options={"fault_mode": "respawn"},
        )
        result = run(spec, backend="multiprocess")
        reference = train(
            workload.model,
            workload.dataset,
            GradientDescent(0.05),
            num_iterations=NUM_ITERATIONS,
        )
        np.testing.assert_allclose(
            result.training.weights, reference.weights, atol=1e-8
        )
        assert result.extras["fault_mode"] == "respawn"
