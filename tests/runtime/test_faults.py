"""Unit tests for the fault-injection subsystem (``repro.runtime.faults``)."""

import numpy as np
import pytest

from repro.cluster.dynamic import ChurnEvent, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.datasets.batching import make_batches
from repro.exceptions import ConfigurationError
from repro.runtime.faults import (
    FAULT_MODES,
    FaultSchedule,
    build_fault_schedule,
    ensure_injectable,
    is_injectable,
    plan_example_loads,
    validate_fault_mode,
)
from repro.schemes.bcc import BCCScheme
from repro.schemes.uncoded import UncodedScheme
from repro.stragglers.dynamics import WorkerProcess
from repro.stragglers.models import DeterministicDelay, ShiftedExponentialDelay


def small_cluster(num_workers: int = 4) -> ClusterSpec:
    return ClusterSpec.homogeneous(
        num_workers, ShiftedExponentialDelay(straggling=500.0, shift=0.001)
    )


class _UnregisteredProcess(WorkerProcess):
    """A process class deliberately absent from the registry."""

    def timeline(self, base, num_iterations, rng=None):
        return [base] * num_iterations


class TestValidateFaultMode:
    def test_accepts_known_modes(self):
        for mode in FAULT_MODES:
            assert validate_fault_mode(mode) == mode

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="zombie"):
            validate_fault_mode("zombie")


class TestFaultSchedule:
    def test_shape_and_accessors(self):
        delays = np.array([[0.0, np.inf], [0.1, 0.2]])
        schedule = FaultSchedule(delays=delays)
        assert schedule.num_iterations == 2
        assert schedule.num_workers == 2
        assert schedule.is_absent(0, 1)
        assert not schedule.is_absent(1, 1)
        np.testing.assert_array_equal(schedule.active_counts, [1, 2])
        np.testing.assert_array_equal(schedule.worker_delays(0), [0.0, 0.1])

    def test_rejects_bad_shapes_and_values(self):
        with pytest.raises(ConfigurationError, match="matrix"):
            FaultSchedule(delays=np.zeros(3))
        with pytest.raises(ConfigurationError, match="at least one"):
            FaultSchedule(delays=np.zeros((0, 2)))
        with pytest.raises(ConfigurationError, match="non-negative"):
            FaultSchedule(delays=np.array([[-0.1]]))
        with pytest.raises(ConfigurationError, match="non-negative"):
            FaultSchedule(delays=np.array([[np.nan]]))

    def test_worker_index_validated(self):
        schedule = FaultSchedule(delays=np.zeros((2, 2)))
        with pytest.raises(ConfigurationError, match="worker index"):
            schedule.worker_delays(5)

    def test_delays_are_read_only(self):
        schedule = FaultSchedule(delays=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            schedule.delays[0, 0] = 1.0

    def test_fingerprint_tracks_exact_bits(self):
        a = FaultSchedule(delays=np.array([[0.1, 0.2]]))
        b = FaultSchedule(delays=np.array([[0.1, 0.2]]))
        c = FaultSchedule(delays=np.array([[0.1, 0.2 + 1e-12]]))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestInjectable:
    def test_static_cluster_is_injectable(self):
        assert is_injectable(small_cluster())

    def test_registered_dynamics_are_injectable(self):
        spec = DynamicClusterSpec(small_cluster(), dynamics="preempt", seed=0)
        ensure_injectable(spec)
        assert is_injectable(spec)

    def test_scripted_churn_is_injectable(self):
        spec = DynamicClusterSpec(
            small_cluster(),
            events=[ChurnEvent("leave", 1, 2)],
            initially_absent=[0],
        )
        assert is_injectable(spec)

    def test_unregistered_process_named_in_error(self):
        spec = DynamicClusterSpec(
            small_cluster(), dynamics=_UnregisteredProcess(), seed=0
        )
        with pytest.raises(ConfigurationError, match="_UnregisteredProcess"):
            ensure_injectable(spec)
        assert not is_injectable(spec)

    def test_non_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="ClusterSpec"):
            ensure_injectable("nope")


class TestPlanExampleLoads:
    def test_unit_loads_without_batching(self):
        plan = UncodedScheme().build_plan(8, 4)
        np.testing.assert_array_equal(plan_example_loads(plan), [2, 2, 2, 2])

    def test_batched_loads(self):
        plan = UncodedScheme().build_plan(4, 4)
        unit_spec = make_batches(10, 3)  # batches of 3,3,3,1
        loads = plan_example_loads(plan, unit_spec)
        assert loads.sum() == 10
        assert loads.shape == (4,)


class TestBuildFaultSchedule:
    def test_static_cluster_draws_per_cell(self):
        spec = ClusterSpec.homogeneous(3, DeterministicDelay(0.01))
        schedule = build_fault_schedule(
            spec, 4, loads=[2, 2, 2], include_communication=False, rng=0
        )
        assert schedule.num_iterations == 4
        assert schedule.num_workers == 3
        np.testing.assert_allclose(schedule.delays, 0.02)
        assert bool(schedule.availability.all())

    def test_zero_load_worker_draws_nothing(self):
        spec = ClusterSpec.homogeneous(2, DeterministicDelay(0.01))
        schedule = build_fault_schedule(
            spec, 2, loads=[0, 3], include_communication=False, rng=0
        )
        np.testing.assert_allclose(schedule.delays[:, 0], 0.0)
        np.testing.assert_allclose(schedule.delays[:, 1], 0.03)

    def test_deterministic_from_seed(self):
        spec = DynamicClusterSpec(small_cluster(), dynamics="preempt", seed=3)
        kwargs = dict(loads=[2, 2, 2, 2], include_communication=False)
        one = build_fault_schedule(spec, 6, rng=7, **kwargs)
        two = build_fault_schedule(spec, 6, rng=7, **kwargs)
        assert one.fingerprint() == two.fingerprint()

    def test_scripted_absence_becomes_inf(self):
        spec = DynamicClusterSpec(
            small_cluster(3),
            events=[ChurnEvent("leave", 1, 1)],
            initially_absent=[2],
        )
        schedule = build_fault_schedule(
            spec, 3, loads=[2, 2, 2], include_communication=False, rng=0
        )
        availability = schedule.availability
        assert bool(availability[0, 0]) and bool(availability[0, 1])
        assert not availability[1, 1] and not availability[2, 1]
        assert not availability[:, 2].any()

    def test_communication_component_needs_message_sizes(self):
        spec = ClusterSpec.homogeneous(2, DeterministicDelay(0.01))
        with pytest.raises(ConfigurationError, match="message_sizes"):
            build_fault_schedule(spec, 2, loads=[1, 1])

    def test_communication_component_adds_transfer_time(self):
        plan = BCCScheme(load=2).build_feasible_plan(4, 2, rng=0)
        spec = ClusterSpec.homogeneous(2, DeterministicDelay(0.01))
        bare = build_fault_schedule(
            spec, 2, loads=[2, 2], include_communication=False, rng=0
        )
        loaded = build_fault_schedule(
            spec, 2, loads=[2, 2], message_sizes=plan.message_sizes, rng=0
        )
        # The default communication model costs zero seconds, so the two
        # schedules agree; what matters is the path accepts message sizes.
        assert loaded.num_workers == bare.num_workers

    def test_length_mismatches_rejected(self):
        spec = ClusterSpec.homogeneous(2, DeterministicDelay(0.01))
        with pytest.raises(ConfigurationError, match="loads"):
            build_fault_schedule(spec, 2, loads=[1], include_communication=False)
        with pytest.raises(ConfigurationError, match="message_sizes"):
            build_fault_schedule(spec, 2, loads=[1, 1], message_sizes=[1.0])

    def test_unregistered_process_rejected(self):
        spec = DynamicClusterSpec(
            small_cluster(), dynamics=_UnregisteredProcess(), seed=0
        )
        with pytest.raises(ConfigurationError, match="_UnregisteredProcess"):
            build_fault_schedule(
                spec, 2, loads=[1, 1, 1, 1], include_communication=False
            )
