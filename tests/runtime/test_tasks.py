"""Tests for the picklable worker tasks."""

import pickle

import numpy as np
import pytest

from repro.datasets.batching import make_batches
from repro.datasets.synthetic import make_linear_regression_data
from repro.exceptions import RuntimeBackendError
from repro.gradients.least_squares import LeastSquaresLoss
from repro.runtime.tasks import WorkerTask, build_worker_tasks
from repro.schemes.bcc import BCCScheme
from repro.schemes.coded import CyclicRepetitionScheme
from repro.schemes.randomized import SimpleRandomizedScheme
from repro.schemes.uncoded import UncodedScheme
from repro.simulation.execution import worker_message
from repro.stragglers.models import DeterministicDelay


@pytest.fixture
def problem():
    dataset, _ = make_linear_regression_data(24, 4, seed=0)
    return LeastSquaresLoss(), dataset


class TestWorkerTask:
    def test_validation(self, problem):
        model, dataset = problem
        with pytest.raises(RuntimeBackendError):
            WorkerTask(0, model, [dataset.features], [dataset.labels], "mystery")
        with pytest.raises(RuntimeBackendError):
            WorkerTask(0, model, [dataset.features], [dataset.labels], "linear")
        with pytest.raises(RuntimeBackendError):
            WorkerTask(0, model, [dataset.features], [], "sum")

    def test_counts(self, problem):
        model, dataset = problem
        task = WorkerTask(
            0,
            model,
            [dataset.features[:3], dataset.features[3:5]],
            [dataset.labels[:3], dataset.labels[3:5]],
            "sum",
        )
        assert task.num_units == 2
        assert task.num_examples == 5


class TestBuildWorkerTasks:
    @pytest.mark.parametrize(
        "scheme, num_units, num_workers, expected_mode",
        [
            (UncodedScheme(), 24, 6, "sum"),
            (BCCScheme(load=6), 24, 8, "sum"),
            (SimpleRandomizedScheme(load=6), 24, 8, "identity"),
            (CyclicRepetitionScheme(load=3), 24, 24, "linear"),
        ],
        ids=["uncoded", "bcc", "randomized", "cyclic"],
    )
    def test_mode_inference_and_message_equivalence(
        self, problem, scheme, num_units, num_workers, expected_mode, rng
    ):
        model, dataset = problem
        unit_spec = None
        if num_units != dataset.num_examples:
            unit_spec = make_batches(dataset.num_examples, dataset.num_examples // num_units)
        plan = scheme.build_feasible_plan(num_units, num_workers, rng=rng)
        tasks = build_worker_tasks(plan, model, dataset, unit_spec=unit_spec)
        assert len(tasks) == num_workers
        assert all(task.encoding_mode == expected_mode for task in tasks)

        # The task's locally computed message must equal the plan+dataset path.
        weights = rng.standard_normal(dataset.num_features)
        for worker in range(0, num_workers, max(num_workers // 4, 1)):
            expected = worker_message(plan, worker, model, dataset, weights, unit_spec)
            np.testing.assert_allclose(
                tasks[worker].compute_message(weights), expected, atol=1e-10
            )

    def test_tasks_are_picklable(self, problem, rng):
        model, dataset = problem
        plan = BCCScheme(load=6).build_feasible_plan(24, 8, rng=rng)
        tasks = build_worker_tasks(
            plan,
            model,
            dataset,
            straggle_delays=[DeterministicDelay(0.0)] * 8,
            seed=3,
        )
        restored = pickle.loads(pickle.dumps(tasks[0]))
        weights = rng.standard_normal(dataset.num_features)
        np.testing.assert_allclose(
            restored.compute_message(weights), tasks[0].compute_message(weights)
        )

    def test_straggle_delays_length_checked(self, problem, rng):
        model, dataset = problem
        plan = UncodedScheme().build_plan(24, 6)
        with pytest.raises(RuntimeBackendError):
            build_worker_tasks(
                plan, model, dataset, straggle_delays=[DeterministicDelay(0.0)]
            )

    def test_batch_unit_spec_slices_examples(self, problem, rng):
        model, dataset = problem
        unit_spec = make_batches(24, 4)  # 6 batches
        plan = UncodedScheme().build_plan(6, 3)
        tasks = build_worker_tasks(plan, model, dataset, unit_spec=unit_spec)
        assert tasks[0].num_units == 2
        assert tasks[0].num_examples == 8
