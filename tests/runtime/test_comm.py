"""Tests for the queue-backed communicator (exercised in-process)."""

import pytest

from repro.exceptions import RuntimeBackendError
from repro.runtime.comm import InProcessCommunicator


class TestInProcessCommunicator:
    def test_worker_count_validation(self):
        with pytest.raises(RuntimeBackendError):
            InProcessCommunicator(0)
        assert InProcessCommunicator(3).num_workers == 3

    def test_send_and_receive_roundtrip(self):
        communicator = InProcessCommunicator(2)
        channel = communicator.worker_channel(1)
        communicator.send_to_worker(1, {"weights": [1, 2, 3]})
        payload = channel.receive(timeout=1.0)
        assert payload == {"weights": [1, 2, 3]}
        channel.send("done")
        worker, reply = communicator.receive_any(timeout=1.0)
        assert worker == 1
        assert reply == "done"

    def test_broadcast_reaches_every_worker(self):
        communicator = InProcessCommunicator(3)
        communicator.broadcast("hello")
        for worker in range(3):
            assert communicator.worker_channel(worker).receive(timeout=1.0) == "hello"

    def test_receive_any_timeout(self):
        communicator = InProcessCommunicator(1)
        with pytest.raises(RuntimeBackendError):
            communicator.receive_any(timeout=0.05)

    def test_worker_receive_timeout(self):
        communicator = InProcessCommunicator(1)
        channel = communicator.worker_channel(0)
        with pytest.raises(RuntimeBackendError):
            channel.receive(timeout=0.05)

    def test_worker_index_bounds(self):
        communicator = InProcessCommunicator(2)
        with pytest.raises(RuntimeBackendError):
            communicator.send_to_worker(2, "x")
        with pytest.raises(RuntimeBackendError):
            communicator.worker_channel(-1)

    def test_drain_discards_pending_messages(self):
        communicator = InProcessCommunicator(1)
        channel = communicator.worker_channel(0)
        channel.send("a")
        channel.send("b")
        # Queue feeding is asynchronous; allow the background feeder to flush.
        import time

        time.sleep(0.05)
        assert communicator.drain() == 2
        assert communicator.drain() == 0
