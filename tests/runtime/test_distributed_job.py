"""End-to-end tests of the multiprocessing runtime.

These tests spawn real worker processes, so they use small worker counts and
few iterations to stay fast.
"""

import numpy as np
import pytest

import repro.runtime.job as job_module
from repro.datasets.batching import make_batches
from repro.datasets.synthetic import make_linear_regression_data, make_separable_classification_data
from repro.exceptions import RuntimeBackendError
from repro.gradients.least_squares import LeastSquaresLoss
from repro.gradients.logistic import LogisticLoss
from repro.optim.gradient_descent import GradientDescent
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.optim.trainer import train
from repro.runtime.job import run_distributed_job
from repro.runtime.worker import ResultMessage
from repro.schemes.bcc import BCCScheme
from repro.schemes.coded import CyclicRepetitionScheme
from repro.schemes.uncoded import UncodedScheme
from repro.stragglers.models import DeterministicDelay


pytestmark = pytest.mark.runtime


class TestRunDistributedJob:
    def test_uncoded_matches_centralised_training(self):
        dataset, _ = make_linear_regression_data(24, 4, seed=0)
        model = LeastSquaresLoss()
        plan = UncodedScheme().build_plan(24, 4)
        result = run_distributed_job(
            plan,
            model,
            dataset,
            GradientDescent(0.1),
            num_iterations=5,
            seed=0,
        )
        centralised = train(model, dataset, GradientDescent(0.1), num_iterations=5)
        np.testing.assert_allclose(result.training.weights, centralised.weights, atol=1e-8)
        assert result.workers_heard == [4] * 5
        assert len(result.iteration_times) == 5
        assert result.total_seconds > 0

    def test_bcc_with_injected_stragglers(self):
        dataset, _ = make_separable_classification_data(40, 5, seed=1)
        model = LogisticLoss()
        unit_spec = make_batches(40, 5)  # 8 batches
        plan = BCCScheme(load=2).build_feasible_plan(8, 6, rng=0)
        # Worker 0 is made artificially slow; the BCC master should usually
        # not need to wait for it.
        delays = [DeterministicDelay(0.02)] + [DeterministicDelay(0.0)] * 5
        result = run_distributed_job(
            plan,
            model,
            dataset,
            NesterovAcceleratedGradient(0.3),
            num_iterations=4,
            unit_spec=unit_spec,
            straggle_delays=delays,
            seed=1,
        )
        centralised = train(
            model, dataset, NesterovAcceleratedGradient(0.3), num_iterations=4
        )
        np.testing.assert_allclose(result.training.weights, centralised.weights, atol=1e-8)
        assert result.average_recovery_threshold <= 6

    def test_iteration_timeout_must_be_positive(self):
        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        with pytest.raises(RuntimeBackendError):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                iteration_timeout=0.0,
            )

    def test_stale_replay_hits_iteration_deadline(self, monkeypatch):
        """A worker replaying old-iteration results must not hang the master.

        Every stale message used to re-arm ``receive_timeout``, so a replayer
        could spin the loop forever; the per-iteration deadline now raises.
        The communicator and process pool are faked so the master sees an
        endless stream of stale messages without real child processes.
        """

        class _StaleCommunicator:
            def __init__(self, num_workers, *, context=None):
                self.num_workers = num_workers

            def worker_channel(self, worker):
                return None

            def broadcast(self, payload):
                pass

            def receive_any(self, timeout=None):
                # Always an answer to a long-gone broadcast.
                return 0, ResultMessage(
                    iteration=-1,
                    worker_id=0,
                    message=np.zeros(2),
                    compute_seconds=0.0,
                )

            def drain(self):
                pass

        class _InertProcess:
            def __init__(self, *args, **kwargs):
                pass

            def start(self):
                pass

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return False

        class _InertContext:
            def Process(self, *args, **kwargs):
                return _InertProcess()

        monkeypatch.setattr(job_module, "InProcessCommunicator", _StaleCommunicator)
        monkeypatch.setattr(job_module.mp, "get_context", lambda *a, **k: _InertContext())

        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        with pytest.raises(RuntimeBackendError, match="did not complete within"):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                iteration_timeout=0.2,
            )

    def test_coded_scheme_runtime(self):
        dataset, _ = make_linear_regression_data(12, 3, seed=2)
        model = LeastSquaresLoss()
        plan = CyclicRepetitionScheme(load=2).build_plan(12, 12, rng=0)
        result = run_distributed_job(
            plan,
            model,
            dataset,
            GradientDescent(0.05),
            num_iterations=3,
            seed=2,
        )
        centralised = train(model, dataset, GradientDescent(0.05), num_iterations=3)
        np.testing.assert_allclose(result.training.weights, centralised.weights, atol=1e-6)
        # The coded master stops once any 11 workers reported.
        assert all(count <= 12 for count in result.workers_heard)
