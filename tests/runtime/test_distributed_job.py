"""End-to-end tests of the multiprocessing runtime.

These tests spawn real worker processes, so they use small worker counts and
few iterations to stay fast.
"""

import numpy as np
import pytest

import repro.runtime.job as job_module
from repro.datasets.batching import make_batches
from repro.datasets.synthetic import make_linear_regression_data, make_separable_classification_data
from repro.exceptions import RuntimeBackendError
from repro.gradients.least_squares import LeastSquaresLoss
from repro.gradients.logistic import LogisticLoss
from repro.optim.gradient_descent import GradientDescent
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.optim.trainer import train
from repro.runtime.faults import FaultSchedule
from repro.runtime.job import run_distributed_job
from repro.runtime.worker import ResultMessage
from repro.schemes.bcc import BCCScheme
from repro.schemes.coded import CyclicRepetitionScheme
from repro.schemes.uncoded import UncodedScheme
from repro.stragglers.models import DeterministicDelay


pytestmark = pytest.mark.runtime


class TestRunDistributedJob:
    def test_uncoded_matches_centralised_training(self):
        dataset, _ = make_linear_regression_data(24, 4, seed=0)
        model = LeastSquaresLoss()
        plan = UncodedScheme().build_plan(24, 4)
        result = run_distributed_job(
            plan,
            model,
            dataset,
            GradientDescent(0.1),
            num_iterations=5,
            seed=0,
        )
        centralised = train(model, dataset, GradientDescent(0.1), num_iterations=5)
        np.testing.assert_allclose(result.training.weights, centralised.weights, atol=1e-8)
        assert result.workers_heard == [4] * 5
        assert len(result.iteration_times) == 5
        assert result.total_seconds > 0

    def test_bcc_with_injected_stragglers(self):
        dataset, _ = make_separable_classification_data(40, 5, seed=1)
        model = LogisticLoss()
        unit_spec = make_batches(40, 5)  # 8 batches
        plan = BCCScheme(load=2).build_feasible_plan(8, 6, rng=0)
        # Worker 0 is made artificially slow; the BCC master should usually
        # not need to wait for it.
        delays = [DeterministicDelay(0.02)] + [DeterministicDelay(0.0)] * 5
        result = run_distributed_job(
            plan,
            model,
            dataset,
            NesterovAcceleratedGradient(0.3),
            num_iterations=4,
            unit_spec=unit_spec,
            straggle_delays=delays,
            seed=1,
        )
        centralised = train(
            model, dataset, NesterovAcceleratedGradient(0.3), num_iterations=4
        )
        np.testing.assert_allclose(result.training.weights, centralised.weights, atol=1e-8)
        assert result.average_recovery_threshold <= 6

    def test_iteration_timeout_must_be_positive(self):
        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        with pytest.raises(RuntimeBackendError):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                iteration_timeout=0.0,
            )

    def test_stale_replay_hits_iteration_deadline(self, monkeypatch):
        """A worker replaying old-iteration results must not hang the master.

        Every stale message used to re-arm ``receive_timeout``, so a replayer
        could spin the loop forever; the per-iteration deadline now raises.
        The communicator and process pool are faked so the master sees an
        endless stream of stale messages without real child processes.
        """

        class _StaleCommunicator:
            def __init__(self, num_workers, *, context=None):
                self.num_workers = num_workers

            def worker_channel(self, worker):
                return None

            def broadcast(self, payload):
                pass

            def receive_any(self, timeout=None):
                # Always an answer to a long-gone broadcast.
                return 0, ResultMessage(
                    iteration=-1,
                    worker_id=0,
                    message=np.zeros(2),
                    compute_seconds=0.0,
                )

            def drain(self):
                pass

        class _InertProcess:
            def __init__(self, *args, **kwargs):
                pass

            def start(self):
                pass

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return False

        class _InertContext:
            def Process(self, *args, **kwargs):
                return _InertProcess()

        monkeypatch.setattr(job_module, "InProcessCommunicator", _StaleCommunicator)
        monkeypatch.setattr(job_module.mp, "get_context", lambda *a, **k: _InertContext())

        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        with pytest.raises(RuntimeBackendError, match="did not complete within"):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                iteration_timeout=0.2,
            )

    def test_injected_kill_is_named_not_generic_timeout(self, monkeypatch):
        """A worker killed during broadcast is reported by name and iteration.

        Before fault injection, a worker dying mid-iteration surfaced as the
        generic iteration timeout; with a fault schedule active, the master
        checks process liveness when its receive times out and raises an
        error naming the dead worker and the iteration it was answering.
        The communicator and process pool are faked so the master observes a
        silent, dead worker without spawning real children.
        """

        class _DeafCommunicator:
            def __init__(self, num_workers, *, context=None):
                self.num_workers = num_workers

            def worker_channel(self, worker):
                return None

            def broadcast(self, payload):
                pass

            def receive_any(self, timeout=None):
                # No worker ever answers: the kill happened during broadcast.
                raise RuntimeBackendError(
                    "the master timed out waiting for worker messages"
                )

            def drain(self):
                pass

        class _DeadProcess:
            def __init__(self, *args, **kwargs):
                pass

            def start(self):
                pass

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return False

        class _DeadContext:
            def Process(self, *args, **kwargs):
                return _DeadProcess()

        monkeypatch.setattr(job_module, "InProcessCommunicator", _DeafCommunicator)
        monkeypatch.setattr(job_module.mp, "get_context", lambda *a, **k: _DeadContext())

        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        schedule = FaultSchedule(delays=np.zeros((1, 2)))
        with pytest.raises(
            RuntimeBackendError, match=r"worker 0 died before answering iteration 0"
        ):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                receive_timeout=0.05,
                iteration_timeout=0.5,
                fault_schedule=schedule,
            )

    def test_schedule_must_cover_the_horizon(self):
        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        schedule = FaultSchedule(delays=np.zeros((1, 2)))
        with pytest.raises(RuntimeBackendError, match="covers 1 iteration"):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=3,
                fault_schedule=schedule,
            )

    def test_schedule_and_straggle_delays_are_exclusive(self):
        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        schedule = FaultSchedule(delays=np.zeros((1, 2)))
        with pytest.raises(RuntimeBackendError, match="mutually exclusive"):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                straggle_delays=[DeterministicDelay(0.0)] * 2,
                fault_schedule=schedule,
            )

    def test_all_absent_iteration_fails_fast(self):
        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        schedule = FaultSchedule(delays=np.full((1, 2), np.inf))
        with pytest.raises(RuntimeBackendError, match="no scheduled-active"):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                fault_schedule=schedule,
            )

    def test_lost_coverage_fails_fast(self):
        """An uncoded plan missing one worker can never aggregate."""
        dataset, _ = make_linear_regression_data(8, 2, seed=0)
        plan = UncodedScheme().build_plan(8, 2)
        schedule = FaultSchedule(delays=np.array([[0.0, np.inf]]))
        with pytest.raises(RuntimeBackendError, match="lacks coverage"):
            run_distributed_job(
                plan,
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                receive_timeout=5.0,
                iteration_timeout=5.0,
                fault_schedule=schedule,
            )

    def test_mute_and_respawn_agree_with_serial_reference(self):
        """Both fault modes train exactly like centralised GD."""
        dataset, _ = make_linear_regression_data(12, 3, seed=2)
        model = LeastSquaresLoss()
        plan = CyclicRepetitionScheme(load=2).build_plan(4, 4)
        unit_spec = make_batches(12, 3)  # 4 units of 3 examples
        # Worker 1 vacant for iterations 1-2, worker 3 joins late; cyclic
        # load 2 tolerates one straggler per iteration.
        delays = np.zeros((4, 4))
        delays[1:3, 1] = np.inf
        delays[0, 3] = np.inf
        schedule = FaultSchedule(delays=delays)
        centralised = train(model, dataset, GradientDescent(0.05), num_iterations=4)
        for mode in ("mute", "respawn"):
            result = run_distributed_job(
                plan,
                model,
                dataset,
                GradientDescent(0.05),
                num_iterations=4,
                unit_spec=unit_spec,
                fault_schedule=schedule,
                fault_mode=mode,
                seed=2,
                receive_timeout=10.0,
            )
            np.testing.assert_allclose(
                result.training.weights, centralised.weights, atol=1e-8
            )
            assert result.scheduled_workers == [3, 3, 3, 4]

    def test_coded_scheme_runtime(self):
        dataset, _ = make_linear_regression_data(12, 3, seed=2)
        model = LeastSquaresLoss()
        plan = CyclicRepetitionScheme(load=2).build_plan(12, 12, rng=0)
        result = run_distributed_job(
            plan,
            model,
            dataset,
            GradientDescent(0.05),
            num_iterations=3,
            seed=2,
        )
        centralised = train(model, dataset, GradientDescent(0.05), num_iterations=3)
        np.testing.assert_allclose(result.training.weights, centralised.weights, atol=1e-6)
        # The coded master stops once any 11 workers reported.
        assert all(count <= 12 for count in result.workers_heard)
