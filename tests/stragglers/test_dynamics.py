"""Tests for the time-varying straggler processes."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.stragglers.base import DelayModel
from repro.stragglers.dynamics import (
    UNAVAILABLE,
    DriftingDelay,
    MarkovModulatedDelay,
    PreemptionModel,
    ScaledDelay,
    UnavailableDelay,
    available_processes,
    process_from_config,
    scale_delay,
)
from repro.stragglers.models import (
    BimodalStragglerDelay,
    DeterministicDelay,
    ExponentialDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TraceDelay,
)


class TestUnavailableDelay:
    def test_samples_are_infinite(self):
        model = UnavailableDelay()
        assert model.sample(10) == float("inf")
        assert np.all(np.isinf(model.sample(10, size=4)))
        assert model.mean(3) == float("inf")
        assert model.cdf(3, 1e12) == 0.0

    def test_consumes_no_randomness(self):
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        UnavailableDelay().sample(5, rng=rng)
        assert rng.bit_generator.state == state

    def test_generic_grid_with_unavailable_cells_skips_their_draws(self):
        # A mixed row must consume the stream exactly like drawing only the
        # available workers in index order.
        fast = ShiftedExponentialDelay(2.0, 0.1)
        row = [fast, UNAVAILABLE, fast]
        grid = DelayModel.sample_grid(row, [7, 7, 7], np.random.default_rng(3), 2)
        reference = np.random.default_rng(3)
        for i in range(2):
            assert grid[i, 0] == fast.sample(7, rng=reference)
            assert np.isinf(grid[i, 1])
            assert grid[i, 2] == fast.sample(7, rng=reference)


class TestScaleDelay:
    def test_identity_factor_returns_the_model(self):
        model = ShiftedExponentialDelay(1.0, 0.5)
        assert scale_delay(model, 1.0) is model

    def test_shift_exponential_reparameterisation(self):
        scaled = scale_delay(ShiftedExponentialDelay(2.0, 0.5), 4.0)
        assert isinstance(scaled, ShiftedExponentialDelay)
        assert scaled.straggling == pytest.approx(0.5)
        assert scaled.shift == pytest.approx(2.0)
        # Same stream, scaled draw: both consume one exponential.
        base_draw = ShiftedExponentialDelay(2.0, 0.5).sample(
            9, rng=np.random.default_rng(1)
        )
        scaled_draw = scaled.sample(9, rng=np.random.default_rng(1))
        assert scaled_draw == pytest.approx(4.0 * base_draw)

    def test_exponential_subclass_scales_through_the_native_path(self):
        scaled = scale_delay(ExponentialDelay(3.0), 2.0)
        assert isinstance(scaled, ShiftedExponentialDelay)
        assert scaled.straggling == pytest.approx(1.5)

    @pytest.mark.parametrize(
        "model",
        [
            DeterministicDelay(0.25),
            ParetoDelay(alpha=2.5, scale=0.1),
            TraceDelay([0.1, 0.2, 0.4]),
        ],
    )
    def test_native_families_scale_in_closed_form(self, model):
        scaled = scale_delay(model, 3.0)
        assert type(scaled) is type(model)
        base_draw = model.sample(5, rng=np.random.default_rng(8))
        scaled_draw = scaled.sample(5, rng=np.random.default_rng(8))
        assert scaled_draw == pytest.approx(3.0 * base_draw)

    def test_unknown_model_gets_the_wrapper(self):
        model = BimodalStragglerDelay()
        scaled = scale_delay(model, 2.0)
        assert isinstance(scaled, ScaledDelay)
        base_draw = model.sample(5, rng=np.random.default_rng(4))
        assert scaled.sample(5, rng=np.random.default_rng(4)) == pytest.approx(
            2.0 * base_draw
        )
        assert scaled.mean(5) == pytest.approx(2.0 * model.mean(5))

    def test_overridden_sampler_gets_the_wrapper(self):
        class Tweaked(ShiftedExponentialDelay):
            def sample(self, load, rng=None, size=None):
                return super().sample(load, rng=rng, size=size) + 1.0

        scaled = scale_delay(Tweaked(1.0, 0.0), 2.0)
        assert isinstance(scaled, ScaledDelay)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            scale_delay(DeterministicDelay(1.0), 0.0)


class TestMarkovModulatedDelay:
    def test_timeline_alternates_between_two_models(self):
        base = ShiftedExponentialDelay(1.0, 0.1)
        process = MarkovModulatedDelay(slowdown=5.0, p_slow=0.5, p_recover=0.5)
        models = process.timeline(base, 200, np.random.default_rng(0))
        assert len(models) == 200
        distinct = {id(model) for model in models}
        assert len(distinct) == 2  # the base model and one slow model
        slow = next(m for m in models if m is not base)
        assert slow.straggling == pytest.approx(0.2)
        assert any(m is base for m in models)

    def test_start_slow_begins_in_the_slow_regime(self):
        base = DeterministicDelay(1.0)
        process = MarkovModulatedDelay(slowdown=2.0, p_slow=0.0, p_recover=0.0,
                                       start_slow=True)
        models = process.timeline(base, 5, np.random.default_rng(0))
        assert all(m.seconds_per_example == pytest.approx(2.0) for m in models)

    def test_consumption_is_fixed_per_call(self):
        # Two different bases, same generator seed: identical draw usage.
        process = MarkovModulatedDelay(slowdown=3.0, p_slow=0.3)
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        process.timeline(ShiftedExponentialDelay(1.0), 50, rng_a)
        process.timeline(DeterministicDelay(1.0), 50, rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestDriftingDelay:
    def test_geometric_interpolation_endpoints(self):
        base = DeterministicDelay(1.0)
        models = DriftingDelay(final_factor=4.0).timeline(base, 3)
        rates = [m.seconds_per_example for m in models]
        assert rates == pytest.approx([1.0, 2.0, 4.0])

    def test_single_iteration_uses_the_initial_factor(self):
        base = DeterministicDelay(1.0)
        (model,) = DriftingDelay(final_factor=9.0, initial_factor=3.0).timeline(
            base, 1
        )
        assert model.seconds_per_example == pytest.approx(3.0)

    def test_draws_no_randomness(self):
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        DriftingDelay().timeline(DeterministicDelay(1.0), 10, rng)
        assert rng.bit_generator.state == state


class TestPreemptionModel:
    def test_recovery_window_is_honoured(self):
        process = PreemptionModel(preempt_probability=1.0, recovery_iterations=3)
        models = process.timeline(DeterministicDelay(1.0), 7, np.random.default_rng(0))
        # Preempted immediately; down for 3, then immediately preempted again.
        assert all(isinstance(m, UnavailableDelay) for m in models[:3])

    def test_zero_probability_never_preempts(self):
        base = DeterministicDelay(1.0)
        models = PreemptionModel(preempt_probability=0.0).timeline(
            base, 20, np.random.default_rng(0)
        )
        assert all(m is base for m in models)

    def test_consumption_independent_of_realised_kills(self):
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        PreemptionModel(preempt_probability=1.0).timeline(
            DeterministicDelay(1.0), 30, rng_a
        )
        PreemptionModel(preempt_probability=0.0).timeline(
            DeterministicDelay(1.0), 30, rng_b
        )
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestProcessRegistry:
    def test_builtin_processes_are_registered(self):
        assert {"markov", "drift", "preempt"} <= set(available_processes())

    def test_from_config_round_trip(self):
        process = process_from_config({"name": "markov", "slowdown": 6.0})
        assert isinstance(process, MarkovModulatedDelay)
        assert process.slowdown == pytest.approx(6.0)
        assert isinstance(process_from_config("drift"), DriftingDelay)
        preempt = PreemptionModel()
        assert process_from_config(preempt) is preempt

    def test_unknown_name_and_bad_parameters_raise(self):
        with pytest.raises(ConfigurationError, match="unknown process"):
            process_from_config("no-such-process")
        with pytest.raises(ConfigurationError, match="rejected its parameters"):
            process_from_config({"name": "markov", "bogus": 1})
        with pytest.raises(ConfigurationError, match="'name' key"):
            process_from_config({"slowdown": 2.0})


class TestSampleTimeline:
    def test_shift_exponential_fast_path_matches_generic(self):
        rows = [
            [ShiftedExponentialDelay(1.0, 0.1), ShiftedExponentialDelay(2.0, 0.2)],
            [ShiftedExponentialDelay(4.0, 0.1), ShiftedExponentialDelay(0.5, 0.0)],
            [ShiftedExponentialDelay(1.5, 0.3), ShiftedExponentialDelay(1.5, 0.3)],
        ]
        loads = [5, 9]
        fast = ShiftedExponentialDelay.sample_timeline(
            rows, loads, np.random.default_rng(11)
        )
        generic = DelayModel.sample_timeline(rows, loads, np.random.default_rng(11))
        np.testing.assert_array_equal(fast, generic)

    def test_mixed_matrix_falls_back_identically(self):
        rows = [
            [ShiftedExponentialDelay(1.0, 0.1), DeterministicDelay(0.2)],
            [ShiftedExponentialDelay(2.0, 0.1), DeterministicDelay(0.2)],
        ]
        loads = [3, 4]
        via_subclass = ShiftedExponentialDelay.sample_timeline(
            rows, loads, np.random.default_rng(2)
        )
        generic = DelayModel.sample_timeline(rows, loads, np.random.default_rng(2))
        np.testing.assert_array_equal(via_subclass, generic)

    def test_row_length_mismatch_raises(self):
        rows = [[ShiftedExponentialDelay(1.0)], [ShiftedExponentialDelay(1.0)]]
        with pytest.raises(ValueError):
            DelayModel.sample_timeline(rows, [1, 2], np.random.default_rng(0))
