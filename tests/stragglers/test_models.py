"""Tests for the straggler delay models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.stragglers.base import DelayModel
from repro.stragglers.models import (
    BimodalStragglerDelay,
    DeterministicDelay,
    ExponentialDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TraceDelay,
)


class TestShiftedExponential:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ShiftedExponentialDelay(straggling=0.0)
        with pytest.raises(ValueError):
            ShiftedExponentialDelay(straggling=1.0, shift=-1.0)

    def test_samples_respect_shift(self, rng):
        model = ShiftedExponentialDelay(straggling=1.0, shift=2.0)
        samples = model.sample(load=3, rng=rng, size=1000)
        assert samples.min() >= 6.0  # shift * load

    def test_mean_formula(self):
        model = ShiftedExponentialDelay(straggling=2.0, shift=1.0)
        # mean = a*r + r/mu = 10 + 5
        assert model.mean(10) == pytest.approx(15.0)

    def test_empirical_mean_close_to_formula(self, rng):
        model = ShiftedExponentialDelay(straggling=2.0, shift=0.5)
        samples = model.sample(load=4, rng=rng, size=20000)
        assert np.mean(samples) == pytest.approx(model.mean(4), rel=0.05)

    def test_cdf_matches_paper_formula(self):
        model = ShiftedExponentialDelay(straggling=2.0, shift=1.0)
        load = 5
        t = 10.0
        expected = 1.0 - np.exp(-(2.0 / 5) * (t - 1.0 * 5))
        assert model.cdf(load, t) == pytest.approx(expected)
        assert model.cdf(load, 4.9) == 0.0

    def test_cdf_empirical_agreement(self, rng):
        model = ShiftedExponentialDelay(straggling=1.0, shift=0.2)
        load = 3
        samples = model.sample(load, rng=rng, size=20000)
        for t in [1.0, 3.0, 6.0]:
            empirical = np.mean(samples <= t)
            assert empirical == pytest.approx(model.cdf(load, t), abs=0.02)

    def test_scalar_vs_array_sampling(self, rng):
        model = ShiftedExponentialDelay()
        assert isinstance(model.sample(1, rng=rng), float)
        assert model.sample(1, rng=rng, size=5).shape == (5,)

    def test_load_must_be_positive(self):
        with pytest.raises(ValueError):
            ShiftedExponentialDelay().sample(0)

    def test_exponential_subclass_has_zero_shift(self):
        model = ExponentialDelay(straggling=3.0)
        assert model.shift == 0.0
        assert model.mean(6) == pytest.approx(2.0)


class TestDeterministic:
    def test_no_randomness(self, rng):
        model = DeterministicDelay(seconds_per_example=0.5)
        samples = model.sample(4, rng=rng, size=10)
        np.testing.assert_allclose(samples, 2.0)
        assert model.sample(4, rng=rng) == 2.0

    def test_cdf_is_step(self):
        model = DeterministicDelay(seconds_per_example=1.0)
        assert model.cdf(3, 2.9) == 0.0
        assert model.cdf(3, 3.0) == 1.0

    def test_mean(self):
        assert DeterministicDelay(2.0).mean(3) == 6.0


class TestPareto:
    def test_minimum_value(self, rng):
        model = ParetoDelay(alpha=2.0, scale=1.0)
        samples = model.sample(2, rng=rng, size=5000)
        assert samples.min() >= 2.0

    def test_mean_formula_and_infinite_mean(self):
        assert ParetoDelay(alpha=2.0, scale=1.0).mean(1) == pytest.approx(2.0)
        # An infinite mean is a library-domain failure, not a bare ValueError,
        # so callers catching ReproError handle it uniformly.
        with pytest.raises(ConfigurationError):
            ParetoDelay(alpha=1.0).mean(1)
        with pytest.raises(ReproError):
            ParetoDelay(alpha=0.5).mean(3)

    def test_cdf(self):
        model = ParetoDelay(alpha=2.0, scale=1.0)
        assert model.cdf(1, 0.5) == 0.0
        assert model.cdf(1, 2.0) == pytest.approx(1 - 0.25)

    def test_heavy_tail_vs_exponential(self, rng):
        pareto = ParetoDelay(alpha=1.5, scale=1.0)
        samples = pareto.sample(1, rng=rng, size=50000)
        # A Pareto(1.5) has far more mass beyond 10x the minimum than an
        # exponential with the same scale would.
        assert np.mean(samples > 10.0) > 0.01


class TestBimodal:
    def test_straggler_fraction(self, rng):
        model = BimodalStragglerDelay(
            seconds_per_example=1.0, straggle_probability=0.2, slowdown=10.0, jitter=0.0
        )
        samples = model.sample(1, rng=rng, size=20000)
        slow_fraction = np.mean(samples > 5.0)
        assert slow_fraction == pytest.approx(0.2, abs=0.02)

    def test_mean_formula(self):
        model = BimodalStragglerDelay(
            seconds_per_example=1.0, straggle_probability=0.5, slowdown=3.0, jitter=0.0
        )
        assert model.mean(2) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BimodalStragglerDelay(straggle_probability=1.5)
        with pytest.raises(ValueError):
            BimodalStragglerDelay(slowdown=0.5)


class TestTrace:
    def test_replay_scales_with_load(self, rng):
        model = TraceDelay([0.5])
        assert model.sample(4, rng=rng) == pytest.approx(2.0)
        assert model.mean(4) == pytest.approx(2.0)

    def test_samples_come_from_trace(self, rng):
        model = TraceDelay([1.0, 2.0])
        samples = model.sample(1, rng=rng, size=1000)
        assert set(np.unique(samples)).issubset({1.0, 2.0})

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceDelay([])
        with pytest.raises(ValueError):
            TraceDelay([1.0, -2.0])
        with pytest.raises(ValueError):
            TraceDelay([np.inf])


class TestBatchedSampling:
    """The stream contract behind the vectorized engine's equivalence."""

    def _scalar_grid(self, models, loads, seed, num_draws):
        generator = np.random.default_rng(seed)
        return np.array(
            [
                [model.sample(load, rng=generator) for model, load in zip(models, loads)]
                for _ in range(num_draws)
            ]
        )

    @pytest.mark.parametrize(
        "model",
        [
            ShiftedExponentialDelay(straggling=2.0, shift=0.5),
            ExponentialDelay(straggling=1.5),
            DeterministicDelay(0.3),
            ParetoDelay(alpha=2.5, scale=0.7),
            BimodalStragglerDelay(),
            TraceDelay([0.1, 0.4, 0.9]),
        ],
    )
    def test_sample_batch_matches_sized_sample(self, model):
        batched = model.sample_batch(5, rng=np.random.default_rng(0), size=64)
        sized = model.sample(5, rng=np.random.default_rng(0), size=64)
        np.testing.assert_array_equal(batched, sized)

    def test_sample_batch_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            DeterministicDelay(1.0).sample_batch(3, size=0)

    @pytest.mark.parametrize(
        "models",
        [
            [ShiftedExponentialDelay(1.0, 0.1), ShiftedExponentialDelay(4.0, 0.0)],
            [ShiftedExponentialDelay(1.0), ExponentialDelay(3.0)],
            [DeterministicDelay(1.0), DeterministicDelay(0.25)],
            [ParetoDelay(2.0, 1.0), ParetoDelay(3.5, 0.2)],
            [TraceDelay([0.2, 0.8]), TraceDelay([0.2, 0.8])],
        ],
        ids=["shift-exp", "mixed-exp-subclass", "deterministic", "pareto", "trace"],
    )
    def test_sample_grid_matches_scalar_loop(self, models):
        loads = [3, 7]
        grid = type(models[0]).sample_grid(
            models, loads, rng=np.random.default_rng(11), num_draws=20
        )
        scalar = self._scalar_grid(models, loads, seed=11, num_draws=20)
        assert grid.shape == (20, 2)
        np.testing.assert_array_equal(grid, scalar)

    def test_sample_grid_mixed_classes_falls_back_identically(self):
        models = [ShiftedExponentialDelay(1.0), ParetoDelay(2.0), BimodalStragglerDelay()]
        loads = [2, 4, 6]
        grid = type(models[0]).sample_grid(
            models, loads, rng=np.random.default_rng(5), num_draws=10
        )
        scalar = self._scalar_grid(models, loads, seed=5, num_draws=10)
        np.testing.assert_array_equal(grid, scalar)

    def test_sample_grid_mixed_traces_fall_back_identically(self):
        models = [TraceDelay([0.1, 0.2]), TraceDelay([0.3, 0.4, 0.5])]
        loads = [1, 2]
        grid = TraceDelay.sample_grid(
            models, loads, rng=np.random.default_rng(9), num_draws=15
        )
        scalar = self._scalar_grid(models, loads, seed=9, num_draws=15)
        np.testing.assert_array_equal(grid, scalar)

    def test_sample_grid_validates_loads(self):
        models = [DeterministicDelay(1.0), DeterministicDelay(1.0)]
        with pytest.raises(ValueError):
            DeterministicDelay.sample_grid(models, [1, 0], num_draws=2)
        with pytest.raises(ValueError):
            DeterministicDelay.sample_grid(models, [1], num_draws=2)

    def test_generic_fallback_is_the_base_implementation(self):
        # The base-class grid must accept arbitrary model mixes — it is the
        # correctness anchor every override defers to.
        models = [BimodalStragglerDelay(), TraceDelay([1.0])]
        grid = DelayModel.sample_grid(models, [2, 3], rng=0, num_draws=4)
        scalar = self._scalar_grid(models, [2, 3], seed=0, num_draws=4)
        np.testing.assert_array_equal(grid, scalar)
