"""Bit-identity of the newly native sample_batch / sample_trials paths.

Every vectorized path added to satisfy the RNG002 contract must consume the
random stream exactly like the scalar ``sample`` (for ``sample_batch``) or
like the generic per-trial grid loop (for ``sample_trials``) — same seeds,
bitwise-equal outputs. A subclass that overrides ``sample`` must make the
inherited native path step aside and fall back to the generic delegate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stragglers.base import DelayModel
from repro.stragglers.models import (
    DeterministicDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TraceDelay,
)

TRACE = [0.4, 1.0, 2.5, 0.9, 1.7]

MODELS = [
    ShiftedExponentialDelay(straggling=1.3, shift=0.7),
    DeterministicDelay(seconds_per_example=2.0),
    ParetoDelay(alpha=2.5, scale=1.2),
    TraceDelay(TRACE),
]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
def test_sample_batch_matches_sized_scalar_sample(model):
    batch = model.sample_batch(7, rng=np.random.default_rng(42), size=64)
    sized = model.sample(7, rng=np.random.default_rng(42), size=64)
    np.testing.assert_array_equal(batch, np.asarray(sized, dtype=float))


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
def test_sample_batch_matches_generic_delegate(model):
    native = model.sample_batch(7, rng=np.random.default_rng(7), size=32)
    generic = DelayModel.sample_batch(model, 7, rng=np.random.default_rng(7), size=32)
    np.testing.assert_array_equal(native, generic)


@pytest.mark.parametrize(
    "make_models",
    [
        lambda: [ShiftedExponentialDelay(1.0 + 0.1 * j, shift=0.2 * j) for j in range(5)],
        lambda: [DeterministicDelay(0.5 + j) for j in range(5)],
        lambda: [ParetoDelay(alpha=1.5 + 0.3 * j, scale=1.0 + 0.1 * j) for j in range(5)],
        lambda: [TraceDelay(TRACE) for _ in range(5)],
    ],
    ids=["shifted-exponential", "deterministic", "pareto", "trace"],
)
def test_sample_trials_matches_generic_per_trial_loop(make_models):
    models = make_models()
    cls = type(models[0])
    loads = [3, 5, 7, 2, 9]
    seeds = [11, 22, 33]
    native = cls.sample_trials(
        models, loads, [np.random.default_rng(s) for s in seeds], num_draws=4
    )
    generic = DelayModel.sample_trials.__func__(
        cls, models, loads, [np.random.default_rng(s) for s in seeds], num_draws=4
    )
    assert native.shape == (3, 4, 5)
    np.testing.assert_array_equal(native, generic)


class _DoubledShiftedExponential(ShiftedExponentialDelay):
    """Override sample() to test the native paths' step-aside guard."""

    def sample(self, load, rng=None, size=None):
        result = super().sample(load, rng=rng, size=size)
        return 2.0 * result


def test_subclass_sample_override_falls_back_to_delegate():
    model = _DoubledShiftedExponential(straggling=1.5, shift=0.3)
    batch = model.sample_batch(4, rng=np.random.default_rng(5), size=16)
    expected = 2.0 * ShiftedExponentialDelay(straggling=1.5, shift=0.3).sample(
        4, rng=np.random.default_rng(5), size=16
    )
    np.testing.assert_array_equal(batch, expected)


def test_trace_trials_with_mixed_traces_fall_back():
    models = [TraceDelay(TRACE), TraceDelay([0.1, 0.2, 0.3])]
    loads = [2, 3]
    seeds = [1, 2]
    native = TraceDelay.sample_trials(
        models, loads, [np.random.default_rng(s) for s in seeds], num_draws=2
    )
    generic = DelayModel.sample_trials.__func__(
        TraceDelay, models, loads, [np.random.default_rng(s) for s in seeds], num_draws=2
    )
    np.testing.assert_array_equal(native, generic)


def test_deterministic_trials_consume_no_randomness():
    models = [DeterministicDelay(1.5), DeterministicDelay(2.0)]
    rngs = [np.random.default_rng(0), np.random.default_rng(1)]
    states = [rng.bit_generator.state for rng in rngs]
    DeterministicDelay.sample_trials(models, [4, 6], rngs, num_draws=3)
    assert [rng.bit_generator.state for rng in rngs] == states
