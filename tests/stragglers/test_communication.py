"""Tests for the communication-time models."""

import numpy as np
import pytest

from repro.stragglers.communication import (
    LinearCommunicationModel,
    ZeroCommunicationModel,
)


class TestLinearCommunication:
    def test_deterministic_when_no_jitter(self, rng):
        model = LinearCommunicationModel(latency=0.1, seconds_per_unit=0.5)
        assert model.sample(2.0, rng=rng) == pytest.approx(1.1)
        np.testing.assert_allclose(model.sample(2.0, rng=rng, size=4), 1.1)

    def test_mean_includes_jitter(self):
        model = LinearCommunicationModel(latency=0.1, seconds_per_unit=1.0, jitter=0.3)
        assert model.mean(2.0) == pytest.approx(2.4)

    def test_jitter_adds_randomness(self, rng):
        model = LinearCommunicationModel(seconds_per_unit=0.0, jitter=1.0)
        samples = model.sample(1.0, rng=rng, size=1000)
        assert samples.std() > 0.5
        assert np.mean(samples) == pytest.approx(1.0, rel=0.15)

    def test_scales_with_message_size(self):
        model = LinearCommunicationModel(seconds_per_unit=2.0)
        assert model.mean(3.0) == pytest.approx(6.0)
        assert model.mean(0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LinearCommunicationModel().mean(-1.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearCommunicationModel(latency=-0.1)
        with pytest.raises(ValueError):
            LinearCommunicationModel(seconds_per_unit=-0.1)
        with pytest.raises(ValueError):
            LinearCommunicationModel(jitter=-0.1)


class TestZeroCommunication:
    def test_always_zero(self, rng):
        model = ZeroCommunicationModel()
        assert model.sample(100.0, rng=rng) == 0.0
        np.testing.assert_array_equal(model.sample(5.0, rng=rng, size=3), np.zeros(3))
        assert model.mean(42.0) == 0.0

    def test_negative_size_rejected_like_linear_model(self, rng):
        # Regression: the zero model used to accept any message size while
        # the linear model validated, so swapping models changed whether a
        # buggy caller was caught.
        model = ZeroCommunicationModel()
        with pytest.raises(ValueError):
            model.sample(-1.0, rng=rng)
        with pytest.raises(ValueError):
            model.sample(-1.0, rng=rng, size=3)
        with pytest.raises(ValueError):
            model.mean(-1.0)


class TestBatchedTransfers:
    """sample_batch / is_deterministic, the vectorized engine's comm path."""

    def test_deterministic_flags(self):
        assert ZeroCommunicationModel().is_deterministic
        assert LinearCommunicationModel(latency=0.1).is_deterministic
        assert not LinearCommunicationModel(jitter=0.5).is_deterministic

    def test_linear_batch_matches_scalar_sequence_with_jitter(self):
        model = LinearCommunicationModel(latency=0.2, seconds_per_unit=0.5, jitter=0.3)
        sizes = np.array([1.0, 3.0, 0.0, 2.0])
        batched = model.sample_batch(sizes, rng=np.random.default_rng(4))
        generator = np.random.default_rng(4)
        scalar = np.array([model.sample(float(s), rng=generator) for s in sizes])
        np.testing.assert_array_equal(batched, scalar)

    def test_linear_batch_without_jitter_is_affine(self):
        model = LinearCommunicationModel(latency=0.2, seconds_per_unit=0.5)
        np.testing.assert_allclose(
            model.sample_batch(np.array([0.0, 2.0])), [0.2, 1.2]
        )

    def test_zero_batch_is_zero(self):
        np.testing.assert_array_equal(
            ZeroCommunicationModel().sample_batch(np.array([1.0, 2.0])), [0.0, 0.0]
        )

    def test_batch_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            LinearCommunicationModel().sample_batch(np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            ZeroCommunicationModel().sample_batch(np.array([-1.0]))

    def test_generic_fallback_loops_scalar_sample(self):
        from repro.stragglers.communication import CommunicationModel

        class Fixed(CommunicationModel):
            def sample(self, message_size, rng=None, size=None):
                return 2.0 * message_size if size is None else np.full(size, 2.0 * message_size)

            def mean(self, message_size):
                return 2.0 * message_size

        np.testing.assert_allclose(
            Fixed().sample_batch(np.array([1.0, 3.0])), [2.0, 6.0]
        )
        assert not Fixed().is_deterministic
