"""Tests for the communication-time models."""

import numpy as np
import pytest

from repro.stragglers.communication import (
    LinearCommunicationModel,
    ZeroCommunicationModel,
)


class TestLinearCommunication:
    def test_deterministic_when_no_jitter(self, rng):
        model = LinearCommunicationModel(latency=0.1, seconds_per_unit=0.5)
        assert model.sample(2.0, rng=rng) == pytest.approx(1.1)
        np.testing.assert_allclose(model.sample(2.0, rng=rng, size=4), 1.1)

    def test_mean_includes_jitter(self):
        model = LinearCommunicationModel(latency=0.1, seconds_per_unit=1.0, jitter=0.3)
        assert model.mean(2.0) == pytest.approx(2.4)

    def test_jitter_adds_randomness(self, rng):
        model = LinearCommunicationModel(seconds_per_unit=0.0, jitter=1.0)
        samples = model.sample(1.0, rng=rng, size=1000)
        assert samples.std() > 0.5
        assert np.mean(samples) == pytest.approx(1.0, rel=0.15)

    def test_scales_with_message_size(self):
        model = LinearCommunicationModel(seconds_per_unit=2.0)
        assert model.mean(3.0) == pytest.approx(6.0)
        assert model.mean(0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LinearCommunicationModel().mean(-1.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearCommunicationModel(latency=-0.1)
        with pytest.raises(ValueError):
            LinearCommunicationModel(seconds_per_unit=-0.1)
        with pytest.raises(ValueError):
            LinearCommunicationModel(jitter=-0.1)


class TestZeroCommunication:
    def test_always_zero(self, rng):
        model = ZeroCommunicationModel()
        assert model.sample(100.0, rng=rng) == 0.0
        np.testing.assert_array_equal(model.sample(5.0, rng=rng, size=3), np.zeros(3))
        assert model.mean(42.0) == 0.0
