"""The distributed executor: protocol round-trips and fault paths.

The multi-node claims under test:

* **Bit-identity** — a sweep sharded over live ``repro serve`` nodes (the
  real asyncio server, in-process) produces the serial records exactly.
* **Retry-with-reassignment** — a node dying mid-lease releases its
  unfinished indices back to the queue; surviving nodes complete the sweep
  with unchanged results. Exhausting ``max_attempts`` (or losing every
  node) turns transport faults into a loud :class:`ServiceError`.
* **Deterministic failures travel** — a task that fails *on the node*
  (infeasible cell) is rehydrated client-side as the original exception
  type, exactly like local execution, with no futile reassignment.
* Endpoint parsing and the ``executor="distributed"`` / ``REPRO_NODES``
  resolution contract.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError, ServiceError
from repro.scheduling import DistributedExecutor, parse_endpoint, parse_nodes
from repro.scheduling.distributed import _node_error
from repro.scheduling.executors import resolve_executor
from repro.service.server import _connection, run_worker
from repro.service.service import SweepService
from repro.stragglers.models import ShiftedExponentialDelay


def make_sweep(trials=2, seed=0, load=5):
    cluster = ClusterSpec.homogeneous(10, ShiftedExponentialDelay(1.0, 0.5))
    base = JobSpec(
        scheme={"name": "bcc", "load": load},
        cluster=cluster,
        num_units=20,
        num_iterations=3,
        seed=seed,
    )
    return Sweep(
        base,
        parameters={"scheme": [{"name": "bcc", "load": load}, {"name": "uncoded"}]},
        trials=trials,
        backend=TimingSimBackend(engine="auto"),
    )


def records_of(result):
    return [(r.cell, r.trial, r.result) for r in result]


class LiveNode:
    """The real sweep-service TCP server on an ephemeral port, in a thread."""

    def __init__(self):
        self.port = None
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(10), "live node failed to start"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        service = SweepService()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            lambda reader, writer: _connection(service, reader, writer),
            "127.0.0.1",
            0,
        )
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop.wait()

    @property
    def endpoint(self):
        return f"127.0.0.1:{self.port}"

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


class FlakyNode:
    """A node that accepts leases and drops the connection mid-lease."""

    def __init__(self):
        self.leases_seen = 0
        self._stopping = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen()
        # Closing a listener does not wake a blocked accept() on Linux, so
        # poll with a short timeout and a stop flag instead.
        self._listener.settimeout(0.1)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def endpoint(self):
        return f"127.0.0.1:{self.port}"

    def _serve(self):
        while not self._stopping:
            try:
                conn, _address = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            try:
                conn.settimeout(5.0)
                stream = conn.makefile("rwb")
                line = stream.readline()
                if line:
                    request = json.loads(line.decode("utf-8"))
                    if request.get("request") == "cells":
                        self.leases_seen += 1
                # Mid-lease hangup: the client must reassign. The makefile
                # stream holds its own reference to the socket, so shut the
                # transport down explicitly or the peer never sees EOF.
                conn.shutdown(socket.SHUT_RDWR)
                stream.close()
            except (OSError, ValueError):
                pass
            conn.close()

    def stop(self):
        self._stopping = True
        self._thread.join(timeout=10)
        self._listener.close()


@pytest.fixture
def live_node():
    node = LiveNode()
    yield node
    node.stop()


#: A localhost port with nothing listening (bound-then-closed, so the OS
#: will not immediately hand it to another process mid-test).
def dead_endpoint() -> str:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


class TestParsing:
    def test_endpoint_round_trip(self):
        assert parse_endpoint("localhost:8123") == ("localhost", 8123)
        assert parse_endpoint(" 10.0.0.2:99 ") == ("10.0.0.2", 99)

    @pytest.mark.parametrize("bad", ["localhost", ":8123", "host:port", "host:70000"])
    def test_malformed_endpoints_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_endpoint(bad)

    def test_node_lists_normalise(self):
        expected = (("a", 1), ("b", 2))
        assert parse_nodes("a:1,b:2") == expected
        assert parse_nodes("a:1, b:2,") == expected
        assert parse_nodes(["a:1", "b:2"]) == expected
        assert parse_nodes([("a", 1), ("b", 2)]) == expected

    def test_executor_requires_nodes_or_listener(self):
        with pytest.raises(ConfigurationError, match="needs node addresses"):
            DistributedExecutor()

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="lease_size"):
            DistributedExecutor("a:1", lease_size=0)
        with pytest.raises(ConfigurationError, match="max_attempts"):
            DistributedExecutor("a:1", max_attempts=0)


class TestResolution:
    def test_name_requires_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_NODES", raising=False)
        with pytest.raises(ConfigurationError, match="REPRO_NODES"):
            resolve_executor("distributed")

    def test_name_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NODES", "127.0.0.1:1,127.0.0.1:2")
        executor = resolve_executor("distributed")
        assert isinstance(executor, DistributedExecutor)
        assert executor.nodes == (("127.0.0.1", 1), ("127.0.0.1", 2))
        executor.close()

    def test_node_error_rehydrates_known_types(self):
        error = _node_error("ConfigurationError", "bad cell")
        assert isinstance(error, ConfigurationError)
        assert "bad cell" in str(error)
        fallback = _node_error("KeyboardInterrupt", "nope")
        assert isinstance(fallback, ServiceError)
        assert "KeyboardInterrupt" in str(fallback)


class TestLiveProtocol:
    def test_matches_serial_records(self, live_node):
        sweep = make_sweep()
        reference = run_sweep(sweep)
        with DistributedExecutor(live_node.endpoint, lease_size=2) as executor:
            result = run_sweep(sweep, executor=executor)
            # Executor reuse: a second sweep over the same connection path.
            again = run_sweep(sweep, executor=executor)
        assert records_of(result) == records_of(reference)
        assert records_of(again) == records_of(reference)

    def test_dead_node_does_not_poison_the_sweep(self, live_node):
        sweep = make_sweep()
        reference = run_sweep(sweep)
        nodes = f"{dead_endpoint()},{live_node.endpoint}"
        with DistributedExecutor(nodes, connect_timeout=2.0) as executor:
            result = run_sweep(sweep, executor=executor)
        assert records_of(result) == records_of(reference)

    def test_mid_lease_drop_is_reassigned(self, live_node):
        sweep = make_sweep()
        reference = run_sweep(sweep)
        flaky = FlakyNode()
        try:
            nodes = f"{flaky.endpoint},{live_node.endpoint}"
            with DistributedExecutor(nodes, lease_size=1) as executor:
                result = run_sweep(sweep, executor=executor)
        finally:
            flaky.stop()
        assert flaky.leases_seen >= 1, "the flaky node never saw a lease"
        assert records_of(result) == records_of(reference)

    def test_join_topology_matches_serial(self):
        # The reversed topology: the executor listens, a `repro serve
        # --join` worker dials in, and stays parked across execute() calls.
        sweep = make_sweep()
        reference = run_sweep(sweep)
        with DistributedExecutor(listen="127.0.0.1:0", join_timeout=20.0) as executor:
            host, port = executor.listen_address
            worker = threading.Thread(
                target=run_worker, args=(host, port), daemon=True
            )
            worker.start()
            result = run_sweep(sweep, executor=executor)
            again = run_sweep(sweep, executor=executor)
        # close() hangs up the parked connection; the worker exits.
        worker.join(timeout=10)
        assert not worker.is_alive()
        assert records_of(result) == records_of(reference)
        assert records_of(again) == records_of(reference)

    def test_deterministic_task_failure_travels(self, live_node):
        # An infeasible cell fails *on the node*; the client re-raises the
        # original exception type, exactly like serial execution.
        sweep = make_sweep(load=999)
        with pytest.raises(ConfigurationError):
            run_sweep(sweep)
        with DistributedExecutor(live_node.endpoint) as executor:
            with pytest.raises(ConfigurationError):
                run_sweep(sweep, executor=executor)


class TestFaultExhaustion:
    def test_all_nodes_dead_is_a_service_error(self):
        sweep = make_sweep()
        nodes = f"{dead_endpoint()},{dead_endpoint()}"
        with DistributedExecutor(nodes, connect_timeout=2.0) as executor:
            with pytest.raises(ServiceError, match="never completed"):
                run_sweep(sweep, executor=executor)

    def test_max_attempts_exhaustion_is_loud(self):
        sweep = make_sweep()
        flaky = FlakyNode()
        try:
            executor = DistributedExecutor(
                flaky.endpoint, lease_size=1, max_attempts=1
            )
            with executor:
                with pytest.raises(ServiceError, match="reassigned"):
                    run_sweep(sweep, executor=executor)
        finally:
            flaky.stop()

    def test_closed_executor_refuses_work(self):
        executor = DistributedExecutor("127.0.0.1:1")
        executor.close()
        with pytest.raises(ConfigurationError, match="closed"):
            executor.execute([])
