"""Executor equivalence: every execution mode, bit-identical records.

The tentpole claim of the scheduling refactor is that serial, thread-pool,
process-pool, and async execution all dispatch the same
:class:`~repro.scheduling.core.SweepPlan` through the same task runner —
so the *only* thing an executor may change is wall-clock time. These tests
pin that: identical ``SweepResult`` records (dataclass equality, which
compares every per-iteration outcome) across all four modes, across
schemes, engines, record modes, and trial-batching settings.
"""

from __future__ import annotations

import pytest

from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.scheduling import (
    AsyncExecutor,
    PoolExecutor,
    SerialExecutor,
    build_sweep_plan,
    resolve_executor,
)
from repro.stragglers.models import ShiftedExponentialDelay

EXECUTORS = ("serial", "thread", "process", "async")


def make_sweep(engine="auto", schemes=("bcc", "uncoded"), trials=3, seed=0):
    cluster = ClusterSpec.homogeneous(10, ShiftedExponentialDelay(1.0, 0.5))
    base = JobSpec(
        scheme={"name": schemes[0], "load": 5},
        cluster=cluster,
        num_units=20,
        num_iterations=3,
        seed=seed,
    )
    configs = []
    for name in schemes:
        if name == "uncoded":
            configs.append({"name": name})
        else:
            configs.extend({"name": name, "load": load} for load in (5, 10))
    return Sweep(
        base,
        parameters={"scheme": configs},
        trials=trials,
        backend=TimingSimBackend(engine=engine),
    )


def records_of(result):
    return [(r.cell, r.trial, r.result) for r in result]


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_all_executors_match_serial(self, executor):
        sweep = make_sweep()
        reference = run_sweep(sweep)
        result = run_sweep(sweep, max_workers=4, executor=executor)
        assert records_of(result) == records_of(reference)

    @pytest.mark.parametrize("engine", ("loop", "vectorized"))
    @pytest.mark.parametrize("executor", ("thread", "async"))
    def test_equivalence_per_engine(self, engine, executor):
        sweep = make_sweep(engine=engine)
        reference = run_sweep(sweep)
        result = run_sweep(sweep, max_workers=3, executor=executor)
        assert records_of(result) == records_of(reference)

    @pytest.mark.parametrize("trial_batching", ("auto", "never"))
    def test_equivalence_across_trial_batching(self, trial_batching):
        sweep = make_sweep(engine="vectorized")
        reference = run_sweep(sweep, trial_batching=trial_batching)
        for executor in ("thread", "async"):
            result = run_sweep(
                sweep, max_workers=4, executor=executor,
                trial_batching=trial_batching,
            )
            assert records_of(result) == records_of(reference)

    def test_summary_record_equivalence(self):
        sweep = make_sweep()
        reference = run_sweep(sweep, record="summary")
        for executor in EXECUTORS:
            result = run_sweep(sweep, max_workers=2, executor=executor, record="summary")
            assert records_of(result) == records_of(reference)

    def test_analytic_backend_equivalence(self):
        cluster = ClusterSpec.homogeneous(10, ShiftedExponentialDelay(1.0, 0.0))
        base = JobSpec(
            scheme={"name": "bcc", "load": 5}, cluster=cluster, num_units=20, seed=0
        )
        sweep = Sweep(base, parameters={"scheme.load": [5, 10]}, backend="analytic")
        reference = run_sweep(sweep)
        for executor in EXECUTORS:
            assert records_of(
                run_sweep(sweep, max_workers=2, executor=executor)
            ) == records_of(reference)

    def test_executor_instance_accepted(self):
        sweep = make_sweep()
        reference = run_sweep(sweep)
        for instance in (SerialExecutor(), PoolExecutor("thread", 2), AsyncExecutor(2)):
            result = run_sweep(sweep, max_workers=2, executor=instance)
            assert records_of(result) == records_of(reference)

    def test_async_executor_instance_is_reusable(self):
        # Each run_sweep call drives execute() on a fresh asyncio.run loop;
        # a concurrency semaphore cached from the first loop must not leak
        # into the second (it would raise "bound to a different event loop").
        sweep = make_sweep()
        executor = AsyncExecutor(max_workers=2)
        first = run_sweep(sweep, executor=executor)
        second = run_sweep(sweep, executor=executor)
        assert records_of(second) == records_of(first)


def shared_seed_sweep():
    sweep = make_sweep()
    return Sweep(
        sweep.base,
        parameters=sweep.parameters,
        trials=sweep.trials,
        backend=sweep.backend,
        seed_strategy="shared",
    )


class TestSequentialPlans:
    def test_only_serial_is_sequential_safe(self):
        assert SerialExecutor().sequential_safe
        assert not PoolExecutor("thread", 1).sequential_safe
        assert not PoolExecutor("process", 1).sequential_safe
        assert not AsyncExecutor().sequential_safe

    def test_serial_instance_accepts_shared_strategy(self):
        shared = shared_seed_sweep()
        reference = run_sweep(shared)
        result = run_sweep(shared, executor=SerialExecutor())
        assert records_of(result) == records_of(reference)

    @pytest.mark.parametrize(
        "instance",
        [PoolExecutor("thread", 4), PoolExecutor("process", 2), AsyncExecutor(4)],
        ids=["thread", "process", "async"],
    )
    def test_concurrent_instance_refuses_shared_strategy(self, instance):
        # The instance path bypasses the max_workers-based string guard; the
        # plan-level check must still refuse to race the shared generator.
        with pytest.raises(ConfigurationError, match="sequential"):
            run_sweep(shared_seed_sweep(), executor=instance)

    def test_concurrent_instance_refused_even_without_max_workers(self):
        with pytest.raises(ConfigurationError, match="sequential"):
            run_sweep(
                shared_seed_sweep(),
                executor=PoolExecutor("thread", 8),
                max_workers=None,
            )

    def test_string_executor_with_workers_still_refused(self):
        with pytest.raises(ConfigurationError, match="seed strategy"):
            run_sweep(shared_seed_sweep(), executor="thread", max_workers=4)


class TestResolveExecutor:
    def test_names_resolve(self):
        assert resolve_executor("serial").name == "serial"
        assert resolve_executor("thread", 2).name == "thread"
        assert resolve_executor("process", 2).name == "process"
        assert resolve_executor("async", 2).name == "async"

    def test_only_process_is_pickle_safe(self):
        assert resolve_executor("process", 2).pickle_safe
        for name in ("serial", "thread", "async"):
            assert not resolve_executor(name, 2).pickle_safe

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            resolve_executor("gpu", 2)

    def test_non_executor_instance_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            resolve_executor(object())

    def test_instances_pass_through(self):
        instance = PoolExecutor("thread", 3)
        assert resolve_executor(instance) is instance


class TestPlanShape:
    def test_plan_is_execution_independent(self):
        sweep = make_sweep()
        backend = TimingSimBackend(engine="auto")
        plan_a = build_sweep_plan(sweep, backend=backend)
        plan_b = build_sweep_plan(sweep, backend=backend)
        assert len(plan_a.tasks) == len(plan_b.tasks)
        assert plan_a.parameter_names == ("scheme",)
        assert [t.entries for t in plan_a.tasks] == [t.entries for t in plan_b.tasks]
        assert not plan_a.sequential

    def test_shared_strategy_plans_sequentially(self):
        sweep = make_sweep()
        sweep = Sweep(
            sweep.base,
            parameters=sweep.parameters,
            trials=sweep.trials,
            backend=sweep.backend,
            seed_strategy="shared",
        )
        plan = build_sweep_plan(sweep, backend=TimingSimBackend(engine="auto"))
        assert plan.sequential
        assert all(task.kind == "trial" for task in plan.tasks)

    def test_entries_cover_every_cell_and_trial(self):
        sweep = make_sweep(trials=4)
        plan = build_sweep_plan(sweep, backend=TimingSimBackend(engine="vectorized"))
        entries = [entry for task in plan.tasks for entry in task.entries]
        cells = len(sweep.cells())
        assert len(entries) == cells * sweep.trials
        assert {(cell, trial) for cell, _, trial in entries} == {
            (cell, trial) for cell in range(cells) for trial in range(4)
        }


class TestPoolReuse:
    """The persistent-pool contract: workers outlive individual sweeps."""

    def plan_tasks(self):
        return build_sweep_plan(
            make_sweep(), backend=TimingSimBackend(engine="auto")
        ).tasks

    def test_pool_persists_across_executions(self):
        tasks = self.plan_tasks()
        with PoolExecutor("thread", 2) as executor:
            first = executor.execute(tasks)
            pool = executor._pool
            assert pool is not None
            second = executor.execute(tasks)
            assert executor._pool is pool  # same workers, no rebuild
        assert executor._pool is None  # context exit released them
        assert second == first

    def test_run_sweep_reuses_an_instance_pool(self):
        # run_sweep closes only executors it resolved from a name; a caller
        # instance keeps its warm pool across sweeps.
        sweep = make_sweep()
        executor = PoolExecutor("thread", 2)
        try:
            first = run_sweep(sweep, executor=executor)
            pool = executor._pool
            assert pool is not None
            second = run_sweep(sweep, executor=executor)
            assert executor._pool is pool
        finally:
            executor.close()
        assert records_of(second) == records_of(first)

    def test_closed_pool_rebuilds_transparently(self):
        tasks = self.plan_tasks()
        executor = PoolExecutor("thread", 2)
        try:
            first = executor.execute(tasks)
            executor.close()
            second = executor.execute(tasks)  # transparently rebuilds
            assert second == first
        finally:
            executor.close()

    def test_close_is_idempotent(self):
        executor = PoolExecutor("thread", 2)
        executor.execute(self.plan_tasks())
        executor.close()
        executor.close()
        assert executor._pool is None
