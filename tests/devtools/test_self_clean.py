"""The meta-test: the shipped tree satisfies its own contract checker.

This is the acceptance gate for the whole rule catalogue — every finding in
``src/repro`` has either been fixed or carries an audited pragma, and no
pragma is stale. If this test fails, either a contract regressed or a new
violation shipped.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools import Severity, lint_paths, rule_catalogue

REPO_ROOT = Path(__file__).resolve().parents[2]
SOURCE_TREE = REPO_ROOT / "src" / "repro"


def test_source_tree_exists():
    assert SOURCE_TREE.is_dir()


def test_shipped_tree_is_lint_clean():
    findings = lint_paths([SOURCE_TREE])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_catalogue_has_the_documented_rules():
    ids = {rule_class.id for rule_class in rule_catalogue()}
    assert {
        "RNG001",
        "RNG002",
        "EXC001",
        "SCHEME001",
        "TIME001",
        "CACHE001",
        "DOC001",
        "TYPE001",
    } <= ids
    assert len(ids) >= 7


def test_every_rule_is_self_describing():
    for rule_class in rule_catalogue():
        rule = rule_class()
        assert rule.id
        assert rule.title
        assert rule.rationale
        assert isinstance(rule.severity, Severity)
