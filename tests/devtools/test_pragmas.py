"""The pragma system: parsing, suppression, and the LINT meta rules."""

from __future__ import annotations

from repro.devtools import lint_source, parse_pragmas


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestParsing:
    def test_same_line_pragma(self):
        pragmas = parse_pragmas(
            "x = 1  # reprolint: allow[EXC001] reason=because\n"
        ).pragmas
        assert len(pragmas) == 1
        assert pragmas[0].rules == {"EXC001"}
        assert pragmas[0].reason == "because"
        assert not pragmas[0].standalone
        assert pragmas[0].target_line == 1

    def test_standalone_pragma_targets_next_line(self):
        pragmas = parse_pragmas(
            "# reprolint: allow[RNG001] reason=probe\nx = 1\n"
        ).pragmas
        assert len(pragmas) == 1
        assert pragmas[0].standalone
        assert pragmas[0].target_line == 2

    def test_multiple_rules_in_one_pragma(self):
        pragmas = parse_pragmas(
            "x = 1  # reprolint: allow[EXC001, RNG001] reason=both\n"
        ).pragmas
        assert pragmas[0].rules == {"EXC001", "RNG001"}

    def test_pragma_inside_string_is_ignored(self):
        pragmas = parse_pragmas(
            's = "# reprolint: allow[EXC001] reason=not a comment"\n'
        ).pragmas
        assert pragmas == []

    def test_plain_comments_are_ignored(self):
        assert parse_pragmas("x = 1  # a normal comment\n").pragmas == []


class TestSuppression:
    def test_same_line_pragma_suppresses(self):
        source = (
            "def f():\n"
            "    raise ValueError('x')  # reprolint: allow[EXC001] reason=testing\n"
        )
        assert lint_source(source) == []

    def test_standalone_pragma_suppresses_the_next_line(self):
        source = (
            "def f():\n"
            "    # reprolint: allow[EXC001] reason=testing\n"
            "    raise ValueError('x')\n"
        )
        assert lint_source(source) == []

    def test_pragma_for_a_different_rule_does_not_suppress(self):
        source = (
            "def f():\n"
            "    raise ValueError('x')  # reprolint: allow[RNG001] reason=wrong rule\n"
        )
        findings = lint_source(source)
        assert "EXC001" in rules_of(findings)

    def test_pragma_on_a_different_line_does_not_suppress(self):
        source = (
            "# reprolint: allow[EXC001] reason=too far away\n"
            "x = 1\n"
            "def f():\n"
            "    raise ValueError('x')\n"
        )
        findings = lint_source(source)
        assert "EXC001" in rules_of(findings)


class TestMetaRules:
    def test_parse_error_yields_lint000(self):
        findings = lint_source("def broken(:\n")
        assert rules_of(findings) == ["LINT000"]

    def test_unknown_rule_yields_lint001(self):
        source = "x = 1  # reprolint: allow[NOPE999] reason=typo\n"
        assert "LINT001" in rules_of(lint_source(source))

    def test_missing_reason_yields_lint002(self):
        source = (
            "def f():\n"
            "    raise ValueError('x')  # reprolint: allow[EXC001]\n"
        )
        findings = lint_source(source)
        assert "LINT002" in rules_of(findings)
        # the suppression itself still works: no EXC001 escapes
        assert "EXC001" not in rules_of(findings)

    def test_stale_pragma_yields_lint003(self):
        source = "x = 1  # reprolint: allow[EXC001] reason=nothing here anymore\n"
        assert "LINT003" in rules_of(lint_source(source))

    def test_used_pragma_is_not_stale(self):
        source = (
            "def f():\n"
            "    raise ValueError('x')  # reprolint: allow[EXC001] reason=testing\n"
        )
        assert lint_source(source) == []

    def test_restricted_select_does_not_flag_other_rules_pragmas(self):
        # Under --select RNG001 the EXC001 rule never runs, so its pragma
        # cannot be judged stale.
        source = "x = 1  # reprolint: allow[EXC001] reason=belongs to another rule\n"
        findings = lint_source(source, select=["RNG001"])
        assert "LINT003" not in rules_of(findings)
