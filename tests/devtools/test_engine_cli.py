"""Engine plumbing and the three equivalent CLI entry points."""

from __future__ import annotations

import json

import pytest

from repro.devtools import (
    format_json,
    format_text,
    iter_python_files,
    lint_paths,
    lint_source,
    rule_catalogue,
)
from repro.devtools.cli import main as lint_main
from repro.exceptions import ConfigurationError
from repro.experiments.cli import main as experiments_main

VIOLATING = "def f():\n    raise ValueError('boom')\n"
CLEAN = "def f():\n    return 1\n"


class TestFileDiscovery:
    def test_directories_expand_recursively_and_sorted(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text(CLEAN)
        (tmp_path / "a.py").write_text(CLEAN)
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_pycache_is_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text(CLEAN)
        (tmp_path / "real.py").write_text(CLEAN)
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["real.py"]

    def test_missing_path_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            iter_python_files(["definitely/not/here"])

    def test_duplicate_paths_are_deduplicated(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text(CLEAN)
        assert len(iter_python_files([target, target])) == 1


class TestReporting:
    def test_json_format_is_machine_readable(self):
        findings = lint_source(VIOLATING)
        payload = json.loads(format_json(findings, checked_files=1))
        assert payload["version"] == 1
        assert payload["checked_files"] == 1
        assert payload["summary"] == {"EXC001": 1}
        (entry,) = payload["findings"]
        assert entry["rule"] == "EXC001"
        assert entry["line"] == 2
        assert entry["severity"] == "error"

    def test_text_format_lists_findings_and_summary(self):
        findings = lint_source(VIOLATING, "src/bad.py")
        text = format_text(findings, checked_files=1)
        assert "src/bad.py:2:" in text
        assert "EXC001" in text
        assert "1 finding" in text

    def test_text_format_clean(self):
        assert "clean" in format_text([], checked_files=3)


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert lint_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert lint_main([str(tmp_path)]) == 1
        assert "EXC001" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/here"]) == 2
        assert "repro lint" in capsys.readouterr().err

    def test_select_restricts_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert lint_main([str(tmp_path), "--select", "RNG001"]) == 0
        capsys.readouterr()

    def test_json_flag(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"EXC001": 1}

    def test_list_rules_prints_catalogue(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_class in rule_catalogue():
            assert rule_class.id in out

    def test_experiments_cli_dispatches_lint(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert experiments_main(["lint", str(tmp_path)]) == 1
        assert "EXC001" in capsys.readouterr().out
        (tmp_path / "bad.py").write_text(CLEAN)
        assert experiments_main(["lint", str(tmp_path)]) == 0
        capsys.readouterr()


class TestEngine:
    def test_lint_paths_matches_lint_source(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATING)
        from_paths = lint_paths([tmp_path])
        from_source = lint_source(VIOLATING)
        assert [f.rule for f in from_paths] == [f.rule for f in from_source]
        assert [f.line for f in from_paths] == [f.line for f in from_source]

    def test_findings_are_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text(VIOLATING)
        (tmp_path / "a.py").write_text(VIOLATING)
        findings = lint_paths([tmp_path])
        assert [f.path for f in findings] == sorted(f.path for f in findings)
