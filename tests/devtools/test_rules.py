"""Fixture tests: every reprolint rule fires on a violating snippet.

Each rule gets at least one minimal source fragment that must produce a
finding and at least one conforming fragment that must stay clean, so a
regression in a rule's detection logic (or an accidental scope change) is
caught without linting the whole tree.
"""

from __future__ import annotations

import pytest

from repro.devtools import Severity, lint_source


def findings_for(source, rule, path="snippet.py"):
    """Findings of one rule over one in-memory snippet."""
    return [f for f in lint_source(source, path, select=[rule]) if f.rule == rule]


# --------------------------------------------------------------------- #
# RNG001 — global-state / hidden-stream randomness
# --------------------------------------------------------------------- #
class TestGlobalRandomness:
    def test_literal_seed_default_rng_is_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        findings = findings_for(source, "RNG001")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert findings[0].severity is Severity.ERROR

    def test_implicit_seed_default_rng_is_flagged(self):
        source = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert len(findings_for(source, "RNG001")) == 1

    def test_legacy_global_numpy_draw_is_flagged(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert len(findings_for(source, "RNG001")) == 1

    def test_stdlib_random_is_flagged(self):
        source = "import random\nx = random.random()\n"
        assert len(findings_for(source, "RNG001")) == 1
        source = "from random import shuffle\nshuffle([1, 2])\n"
        assert len(findings_for(source, "RNG001")) == 1

    def test_seed_passthrough_is_allowed(self):
        source = "import numpy as np\ndef f(seed):\n    return np.random.default_rng(seed)\n"
        assert findings_for(source, "RNG001") == []

    def test_seed_sequence_construction_is_allowed(self):
        source = "import numpy as np\nss = np.random.SeedSequence(7)\n"
        assert findings_for(source, "RNG001") == []

    def test_rng_module_itself_is_exempt(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert findings_for(source, "RNG001", path="src/repro/utils/rng.py") == []

    def test_pragma_suppresses(self):
        source = (
            "import numpy as np\n"
            "# reprolint: allow[RNG001] reason=fixed-seed probe\n"
            "rng = np.random.default_rng(0)\n"
        )
        assert findings_for(source, "RNG001") == []


# --------------------------------------------------------------------- #
# RNG002 — batch-path parity for sample() overrides
# --------------------------------------------------------------------- #
DELAY_OVERRIDE = """
from repro.stragglers.base import DelayModel

class MyDelay(DelayModel):
    def sample(self, load, rng=None, size=None):
        return 1.0
"""

DELAY_COMPLETE = """
from repro.stragglers.base import DelayModel

class MyDelay(DelayModel):
    def sample(self, load, rng=None, size=None):
        return 1.0

    def sample_batch(self, load, rng=None, size=1):
        return [1.0] * size

    @classmethod
    def sample_grid(cls, models, loads, rng=None, num_draws=1):
        return []

    @classmethod
    def sample_trials(cls, models, loads, rngs, num_draws=1):
        return []
"""


class TestBatchPathParity:
    def test_sample_override_without_batch_paths_is_flagged(self):
        findings = findings_for(DELAY_OVERRIDE, "RNG002")
        assert len(findings) == 1
        message = findings[0].message
        assert "sample_batch" in message
        assert "sample_grid" in message
        assert "sample_trials" in message

    def test_complete_override_is_clean(self):
        assert findings_for(DELAY_COMPLETE, "RNG002") == []

    def test_communication_models_only_need_sample_batch(self):
        source = (
            "from repro.stragglers.communication import CommunicationModel\n\n"
            "class MyComm(CommunicationModel):\n"
            "    def sample(self, size_units, rng=None, size=None):\n"
            "        return 0.0\n\n"
            "    def sample_batch(self, size_units, rng=None, size=1):\n"
            "        return [0.0] * size\n"
        )
        assert findings_for(source, "RNG002") == []

    def test_communication_sample_alone_is_flagged(self):
        source = (
            "from repro.stragglers.communication import CommunicationModel\n\n"
            "class MyComm(CommunicationModel):\n"
            "    def sample(self, size_units, rng=None, size=None):\n"
            "        return 0.0\n"
        )
        assert len(findings_for(source, "RNG002")) == 1

    def test_subclass_without_sample_override_is_clean(self):
        source = (
            "from repro.stragglers.base import DelayModel\n\n"
            "class MyDelay(DelayModel):\n"
            "    def mean(self, load):\n"
            "        return 1.0\n"
        )
        assert findings_for(source, "RNG002") == []

    def test_pragma_inherit_suppresses(self):
        source = DELAY_OVERRIDE.replace(
            "class MyDelay",
            "# reprolint: allow[RNG002] reason=wrapper; delegates every draw\n"
            "class MyDelay",
        )
        assert findings_for(source, "RNG002") == []


# --------------------------------------------------------------------- #
# EXC001 — bare builtin raises
# --------------------------------------------------------------------- #
class TestBareBuiltinRaise:
    @pytest.mark.parametrize(
        "builtin", ["ValueError", "RuntimeError", "TypeError", "Exception"]
    )
    def test_bare_builtin_is_flagged(self, builtin):
        source = f"def f():\n    raise {builtin}('boom')\n"
        findings = findings_for(source, "EXC001")
        assert len(findings) == 1
        assert builtin in findings[0].message

    def test_hierarchy_raise_is_clean(self):
        source = (
            "from repro.exceptions import ConfigurationError\n"
            "def f():\n"
            "    raise ConfigurationError('bad n')\n"
        )
        assert findings_for(source, "EXC001") == []

    def test_bare_reraise_is_clean(self):
        source = "def f():\n    try:\n        pass\n    except KeyError:\n        raise\n"
        assert findings_for(source, "EXC001") == []

    def test_other_builtins_pass(self):
        source = "def f():\n    raise KeyError('k')\n"
        assert findings_for(source, "EXC001") == []


# --------------------------------------------------------------------- #
# SCHEME001 — the analytic_runtime obligation
# --------------------------------------------------------------------- #
SCHEME_WITHOUT = """
from repro.schemes.base import Scheme
from repro.schemes.registry import register_scheme

@register_scheme
class MyScheme(Scheme):
    name = "my-scheme"
"""

SCHEME_WITH = SCHEME_WITHOUT + """
    def analytic_runtime(self, cluster, num_units, **kwargs):
        raise NotImplementedError
"""


class TestSchemeAnalyticObligation:
    def test_registered_scheme_without_analytic_runtime_is_flagged(self):
        findings = findings_for(SCHEME_WITHOUT, "SCHEME001")
        assert len(findings) == 1
        assert "MyScheme" in findings[0].message

    def test_registered_scheme_with_analytic_runtime_is_clean(self):
        assert findings_for(SCHEME_WITH, "SCHEME001") == []

    def test_inherited_from_concrete_ancestor_counts(self):
        source = SCHEME_WITH + """

@register_scheme
class Derived(MyScheme):
    name = "derived"
"""
        assert findings_for(source, "SCHEME001") == []

    def test_unregistered_class_is_ignored(self):
        source = (
            "from repro.schemes.base import Scheme\n\n"
            "class Helper(Scheme):\n"
            "    name = 'helper'\n"
        )
        assert findings_for(source, "SCHEME001") == []


# --------------------------------------------------------------------- #
# TIME001 — wall-clock reads
# --------------------------------------------------------------------- #
class TestWallClock:
    @pytest.mark.parametrize(
        "call", ["time.time()", "time.perf_counter()", "time.monotonic()", "time.sleep(1)"]
    )
    def test_time_module_calls_are_flagged(self, call):
        source = f"import time\ndef f():\n    return {call}\n"
        assert len(findings_for(source, "TIME001")) == 1

    def test_from_import_is_flagged(self):
        source = "from time import perf_counter\nx = perf_counter()\n"
        assert len(findings_for(source, "TIME001")) == 1

    def test_datetime_now_is_flagged(self):
        source = "import datetime\nx = datetime.datetime.now()\n"
        assert len(findings_for(source, "TIME001")) == 1
        source = "from datetime import datetime\nx = datetime.now()\n"
        assert len(findings_for(source, "TIME001")) == 1

    def test_runtime_package_is_exempt(self):
        source = "import time\nx = time.perf_counter()\n"
        assert findings_for(source, "TIME001", path="src/repro/runtime/worker.py") == []

    def test_timing_module_is_exempt(self):
        source = "import time\nx = time.perf_counter()\n"
        assert findings_for(source, "TIME001", path="src/repro/utils/timing.py") == []


# --------------------------------------------------------------------- #
# CACHE001 — len()-keyed caches
# --------------------------------------------------------------------- #
class TestLenKeyedCache:
    def test_len_keyed_cache_key_is_flagged(self):
        source = (
            "def f(self):\n"
            "    cache_key = (self.version, len(self.records))\n"
            "    return cache_key\n"
        )
        findings = findings_for(source, "CACHE001")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_len_comparison_against_cache_state_is_flagged(self):
        source = (
            "def f(self):\n"
            "    if self._cache_size == len(self.items):\n"
            "        return self._cached\n"
        )
        assert len(findings_for(source, "CACHE001")) == 1

    def test_measuring_the_cache_itself_is_clean(self):
        source = (
            "def f(self):\n"
            "    if len(self._cache) > 64:\n"
            "        self._cache.clear()\n"
        )
        assert findings_for(source, "CACHE001") == []

    def test_version_keyed_cache_is_clean(self):
        source = (
            "def f(self):\n"
            "    cache_key = (self.records.version, self.metrics)\n"
            "    return cache_key\n"
        )
        assert findings_for(source, "CACHE001") == []


# --------------------------------------------------------------------- #
# CACHE002 — identity-derived cache keys
# --------------------------------------------------------------------- #
class TestIdentityKeyedCache:
    def test_id_keyed_cache_is_flagged(self):
        source = (
            "def f(self, spec):\n"
            "    cache_key = (id(spec), self.engine)\n"
            "    return self._cache[cache_key]\n"
        )
        findings = findings_for(source, "CACHE002")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert findings[0].severity is Severity.ERROR
        assert "id()" in findings[0].message

    def test_hash_keyed_cache_is_flagged(self):
        source = (
            "def f(self, spec):\n"
            "    key = hash(spec)\n"
            "    return self._cache.get(key)\n"
        )
        assert len(findings_for(source, "CACHE002")) == 1

    def test_repr_keyed_store_is_flagged(self):
        source = (
            "def f(self, spec, value):\n"
            "    self._cache[repr(spec)] = value\n"
        )
        assert len(findings_for(source, "CACHE002")) == 1

    def test_fingerprint_from_repr_is_flagged(self):
        source = (
            "def fingerprint(self, spec):\n"
            "    return repr(spec)\n"
        )
        assert len(findings_for(source, "CACHE002")) == 1

    def test_content_fingerprint_key_is_clean(self):
        source = (
            "def f(self, spec, backend):\n"
            "    cache_key = fingerprint_spec(spec, backend=backend)\n"
            "    return self._cache.get(cache_key)\n"
        )
        assert findings_for(source, "CACHE002") == []

    def test_unrelated_repr_is_clean(self):
        source = (
            "def describe(value):\n"
            "    return 'value: ' + repr(value)\n"
        )
        assert findings_for(source, "CACHE002") == []

    def test_display_repr_next_to_key_loop_variable_is_clean(self):
        # A table-rendering loop whose variable happens to be named ``key``
        # is formatting, not keying.
        source = (
            "def render(self, table):\n"
            "    for key, value in self.extras.items():\n"
            "        table.add_row([key, repr(value)])\n"
        )
        assert findings_for(source, "CACHE002") == []

    def test_pragma_suppresses_with_reason(self):
        source = (
            "def f(self, model):\n"
            "    # reprolint: allow[CACHE002] reason=intra-process memo on live object identity\n"
            "    key = id(model)\n"
            "    return self._cache.get(key)\n"
        )
        assert findings_for(source, "CACHE002") == []


# --------------------------------------------------------------------- #
# EXC002 — catch-alls in the scheduler core / service
# --------------------------------------------------------------------- #
class TestSchedulerCatchAll:
    def test_except_exception_in_scheduling_is_flagged(self):
        source = (
            "def probe(spec):\n"
            "    try:\n"
            "        return spec.plan()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        findings = findings_for(
            source, "EXC002", path="src/repro/scheduling/core.py"
        )
        assert len(findings) == 1
        assert findings[0].line == 4
        assert findings[0].severity is Severity.ERROR

    def test_bare_except_in_service_is_flagged(self):
        source = (
            "def load(path):\n"
            "    try:\n"
            "        return path.read_text()\n"
            "    except:\n"
            "        return None\n"
        )
        findings = findings_for(
            source, "EXC002", path="src/repro/service/cache.py"
        )
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_catch_all_inside_tuple_is_flagged(self):
        source = (
            "def load(path):\n"
            "    try:\n"
            "        return path.read_text()\n"
            "    except (OSError, Exception):\n"
            "        return None\n"
        )
        assert len(
            findings_for(source, "EXC002", path="src/repro/service/cache.py")
        ) == 1

    def test_repro_hierarchy_catch_is_clean(self):
        source = (
            "from repro.exceptions import ReproError\n"
            "def probe(spec):\n"
            "    try:\n"
            "        return spec.plan()\n"
            "    except ReproError:\n"
            "        return None\n"
        )
        assert findings_for(
            source, "EXC002", path="src/repro/scheduling/core.py"
        ) == []

    def test_outside_scope_is_exempt(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert findings_for(source, "EXC002", path="src/repro/utils/misc.py") == []


# --------------------------------------------------------------------- #
# DOC001 — public docstrings in repro.api
# --------------------------------------------------------------------- #
class TestPublicDocstring:
    def test_undocumented_public_function_in_api_is_flagged(self):
        source = "def run_everything(spec):\n    return spec\n"
        findings = findings_for(source, "DOC001", path="src/repro/api/extra.py")
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_undocumented_public_method_is_flagged(self):
        source = (
            'class Thing:\n'
            '    """A documented class."""\n\n'
            '    def run(self):\n'
            '        return 1\n'
        )
        findings = findings_for(source, "DOC001", path="src/repro/api/extra.py")
        assert len(findings) == 1
        assert "Thing.run" in findings[0].message

    def test_documented_and_private_names_are_clean(self):
        source = (
            'def public():\n'
            '    """Documented."""\n\n'
            'def _private():\n'
            '    return 1\n'
        )
        assert findings_for(source, "DOC001", path="src/repro/api/extra.py") == []

    def test_outside_api_package_is_out_of_scope(self):
        source = "def f():\n    return 1\n"
        assert findings_for(source, "DOC001", path="src/repro/analysis/extra.py") == []


# --------------------------------------------------------------------- #
# TYPE001 — strict-core annotations
# --------------------------------------------------------------------- #
class TestStrictCoreAnnotations:
    def test_unannotated_public_def_is_flagged(self):
        source = "def f(x):\n    return x\n"
        findings = findings_for(source, "TYPE001", path="src/repro/api/extra.py")
        assert len(findings) == 1
        assert "x" in findings[0].message
        assert "return" in findings[0].message

    def test_self_is_not_required(self):
        source = (
            "class C:\n"
            "    def run(self) -> int:\n"
            "        return 1\n"
        )
        assert findings_for(source, "TYPE001", path="src/repro/schemes/extra.py") == []

    def test_fully_annotated_def_is_clean(self):
        source = "def f(x: int, *args: int, **kw: float) -> int:\n    return x\n"
        assert findings_for(source, "TYPE001", path="src/repro/simulation/extra.py") == []

    def test_unannotated_varargs_are_flagged(self):
        source = "def f(x: int, *args) -> int:\n    return x\n"
        findings = findings_for(source, "TYPE001", path="src/repro/api/extra.py")
        assert len(findings) == 1
        assert "*args" in findings[0].message

    def test_outside_strict_core_is_out_of_scope(self):
        source = "def f(x):\n    return x\n"
        assert findings_for(source, "TYPE001", path="src/repro/analysis/extra.py") == []


# --------------------------------------------------------------------- #
# KERN001 — compiled-kernel sources stay in the nopython subset
# --------------------------------------------------------------------- #
KERNEL_PATH = "src/repro/simulation/kernels/sources.py"


def kernel_snippet(body: str) -> str:
    return (
        "from repro.simulation.kernels.sources import jit_source\n"
        "@jit_source\n"
        "def kernel(positions, out):\n"
        f"{body}"
    )


class TestKernelSourcePurity:
    def test_dict_literal_is_flagged(self):
        source = kernel_snippet("    lookup = {0: 1}\n    return lookup\n")
        findings = findings_for(source, "KERN001", path=KERNEL_PATH)
        assert len(findings) == 1
        assert "dict literal" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_set_constructor_is_flagged(self):
        source = kernel_snippet("    seen = set()\n    return seen\n")
        findings = findings_for(source, "KERN001", path=KERNEL_PATH)
        assert len(findings) == 1
        assert "set() constructor" in findings[0].message

    def test_raise_is_flagged(self):
        source = kernel_snippet("    raise ArithmeticError('no')\n")
        findings = findings_for(source, "KERN001", path=KERNEL_PATH)
        assert len(findings) == 1
        assert "`raise`" in findings[0].message

    def test_try_block_is_flagged(self):
        source = kernel_snippet(
            "    try:\n        out[0] = positions[0]\n"
            "    except IndexError:\n        pass\n"
        )
        findings = findings_for(source, "KERN001", path=KERNEL_PATH)
        # The try block and nothing else: the handler body is fine.
        assert [f.message.split(" in compiled")[0] for f in findings] == [
            "`try` block"
        ]

    def test_string_formatting_is_flagged(self):
        source = kernel_snippet("    label = f'row {positions[0]}'\n    return label\n")
        assert len(findings_for(source, "KERN001", path=KERNEL_PATH)) == 1
        source = kernel_snippet("    label = '{}'.format(positions[0])\n    return label\n")
        assert len(findings_for(source, "KERN001", path=KERNEL_PATH)) == 1
        source = kernel_snippet("    label = 'row %d' % positions[0]\n    return label\n")
        assert len(findings_for(source, "KERN001", path=KERNEL_PATH)) == 1

    def test_print_is_flagged(self):
        source = kernel_snippet("    print(positions)\n")
        findings = findings_for(source, "KERN001", path=KERNEL_PATH)
        assert len(findings) == 1
        assert "print() call" in findings[0].message

    def test_array_loop_body_is_clean(self):
        source = kernel_snippet(
            "    rows = positions.shape[0]\n"
            "    for i in range(rows):\n"
            "        worst = -1\n"
            "        if positions[i, 0] > worst:\n"
            "            worst = positions[i, 0]\n"
            "        out[i] = worst\n"
        )
        assert findings_for(source, "KERN001", path=KERNEL_PATH) == []

    def test_undecorated_helpers_are_out_of_scope(self):
        source = (
            "def helper():\n"
            "    return {0: 1}\n"
        )
        assert findings_for(source, "KERN001", path=KERNEL_PATH) == []

    def test_outside_kernels_package_is_out_of_scope(self):
        source = kernel_snippet("    return {0: 1}\n")
        assert findings_for(
            source, "KERN001", path="src/repro/simulation/job.py"
        ) == []
