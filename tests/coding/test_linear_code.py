"""Tests for the generic LinearGradientCode."""

import numpy as np
import pytest

from repro.coding.linear_code import LinearGradientCode
from repro.exceptions import DecodingError


@pytest.fixture
def simple_code():
    # 3 workers, 2 partitions: B = [[1, 0], [0, 1], [1, 1]].
    return LinearGradientCode(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]), name="demo")


class TestConstruction:
    def test_shape_properties(self, simple_code):
        assert simple_code.num_workers == 3
        assert simple_code.num_partitions == 2
        assert simple_code.computational_load() == 2

    def test_rejects_nonfinite(self):
        with pytest.raises(DecodingError):
            LinearGradientCode(np.array([[np.nan, 1.0]]))

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            LinearGradientCode(np.eye(2), decoding_tolerance=0.0)

    def test_support(self, simple_code):
        np.testing.assert_array_equal(simple_code.support(0), [0])
        np.testing.assert_array_equal(simple_code.support(2), [0, 1])

    def test_to_assignment(self, simple_code):
        assignment = simple_code.to_assignment()
        assert assignment.num_workers == 3
        assert assignment.loads.tolist() == [1, 1, 2]


class TestEncodeDecode:
    @pytest.fixture
    def partition_gradients(self, rng):
        return rng.standard_normal((2, 4))

    def test_encode_uses_only_support(self, simple_code, partition_gradients):
        message = simple_code.encode(0, partition_gradients)
        np.testing.assert_allclose(message, partition_gradients[0])
        combined = simple_code.encode(2, partition_gradients)
        np.testing.assert_allclose(combined, partition_gradients.sum(axis=0))

    def test_encode_shape_check(self, simple_code):
        with pytest.raises(DecodingError):
            simple_code.encode(0, np.zeros((3, 4)))

    def test_decodable_subsets(self, simple_code):
        assert simple_code.is_decodable([0, 1])
        assert simple_code.is_decodable([2])
        assert simple_code.is_decodable([0, 1, 2])
        assert not simple_code.is_decodable([0])
        assert not simple_code.is_decodable([1])

    def test_decode_recovers_total(self, simple_code, partition_gradients):
        total = partition_gradients.sum(axis=0)
        for workers in ([0, 1], [2], [1, 2]):
            messages = np.vstack(
                [simple_code.encode(w, partition_gradients) for w in workers]
            )
            np.testing.assert_allclose(
                simple_code.decode(workers, messages), total, atol=1e-10
            )

    def test_decode_requires_matching_shapes(self, simple_code):
        with pytest.raises(DecodingError):
            simple_code.decode([0, 1], np.zeros((3, 4)))

    def test_decoding_vector_residual_check(self, simple_code):
        with pytest.raises(DecodingError):
            simple_code.decoding_vector([0])

    def test_duplicate_workers_rejected(self, simple_code):
        with pytest.raises(DecodingError):
            simple_code.decoding_vector([0, 0])

    def test_worker_index_bounds(self, simple_code):
        with pytest.raises(DecodingError):
            simple_code.support(5)
        with pytest.raises(DecodingError):
            simple_code.decoding_vector([0, 7])

    def test_minimum_decodable_size(self, simple_code):
        assert simple_code.minimum_decodable_size() == 1  # worker 2 alone decodes

    def test_identity_code_needs_all_workers(self):
        code = LinearGradientCode(np.eye(4))
        assert not code.is_decodable([0, 1, 2])
        assert code.is_decodable([0, 1, 2, 3])
        assert code.minimum_decodable_size() == 4
