"""Tests for DataAssignment."""

import numpy as np
import pytest

from repro.coding.assignment import DataAssignment
from repro.exceptions import AssignmentError


@pytest.fixture
def assignment():
    # 3 workers over 6 examples with some overlap and worker 2 idle-ish.
    return DataAssignment(
        num_examples=6,
        assignments=(np.array([0, 1, 2]), np.array([2, 3, 4, 5]), np.array([5])),
    )


class TestValidation:
    def test_requires_workers(self):
        with pytest.raises(AssignmentError):
            DataAssignment(num_examples=3, assignments=())

    def test_rejects_out_of_range(self):
        with pytest.raises(AssignmentError):
            DataAssignment(num_examples=3, assignments=(np.array([0, 3]),))
        with pytest.raises(AssignmentError):
            DataAssignment(num_examples=3, assignments=(np.array([-1]),))

    def test_rejects_duplicates_within_worker(self):
        with pytest.raises(AssignmentError):
            DataAssignment(num_examples=3, assignments=(np.array([1, 1]),))

    def test_rejects_2d_assignment(self):
        with pytest.raises(AssignmentError):
            DataAssignment(num_examples=3, assignments=(np.zeros((2, 2), dtype=int),))

    def test_empty_worker_allowed(self):
        assignment = DataAssignment(
            num_examples=2, assignments=(np.array([0, 1]), np.array([], dtype=int))
        )
        assert assignment.loads.tolist() == [2, 0]


class TestProperties:
    def test_loads_and_computational_load(self, assignment):
        assert assignment.loads.tolist() == [3, 4, 1]
        assert assignment.computational_load == 4
        assert assignment.total_load == 8
        assert assignment.redundancy == pytest.approx(8 / 6)

    def test_worker_indices(self, assignment):
        np.testing.assert_array_equal(assignment.worker_indices(2), [5])
        with pytest.raises(AssignmentError):
            assignment.worker_indices(3)

    def test_example_multiplicity(self, assignment):
        multiplicity = assignment.example_multiplicity()
        assert multiplicity.tolist() == [1, 1, 2, 1, 1, 2]


class TestCoverage:
    def test_is_complete(self, assignment):
        assert assignment.is_complete()

    def test_incomplete_assignment(self):
        partial = DataAssignment(
            num_examples=4, assignments=(np.array([0]), np.array([1, 2]))
        )
        assert not partial.is_complete()

    def test_covers_all_subsets(self, assignment):
        assert assignment.covers_all([0, 1])
        assert not assignment.covers_all([0, 2])
        assert not assignment.covers_all([2])

    def test_covered_examples_mask(self, assignment):
        mask = assignment.covered_examples([0])
        assert mask.tolist() == [True, True, True, False, False, False]


class TestViews:
    def test_assignment_matrix_roundtrip(self, assignment):
        matrix = assignment.assignment_matrix()
        assert matrix.shape == (3, 6)
        assert matrix.sum() == assignment.total_load
        rebuilt = DataAssignment.from_matrix(matrix)
        assert rebuilt.loads.tolist() == assignment.loads.tolist()
        for worker in range(3):
            np.testing.assert_array_equal(
                np.sort(rebuilt.worker_indices(worker)),
                np.sort(assignment.worker_indices(worker)),
            )

    def test_from_matrix_rejects_non_2d(self):
        with pytest.raises(AssignmentError):
            DataAssignment.from_matrix(np.zeros(3))

    def test_bipartite_graph(self, assignment):
        networkx = pytest.importorskip("networkx")
        graph = assignment.to_bipartite_graph()
        assert graph.number_of_nodes() == 6 + 3
        assert graph.number_of_edges() == assignment.total_load
        assert networkx.is_bipartite(graph)

    def test_describe(self, assignment):
        text = assignment.describe()
        assert "n=3" in text and "m=6" in text and "r=4" in text
