"""Tests for the cyclic-repetition, Reed-Solomon-style and fractional-repetition codes."""

import itertools

import numpy as np
import pytest

from repro.coding.cyclic_repetition import CyclicRepetitionCode
from repro.coding.fractional import FractionalRepetitionCode
from repro.coding.reed_solomon import ReedSolomonStyleCode
from repro.exceptions import ConfigurationError, DecodingError


class TestCyclicRepetitionCode:
    def test_support_is_cyclic_window(self):
        code = CyclicRepetitionCode(num_workers=6, num_stragglers=2, seed=0)
        np.testing.assert_array_equal(code.support(0), [0, 1, 2])
        np.testing.assert_array_equal(np.sort(code.support(5)), [0, 1, 5])
        assert code.computational_load() == 3

    def test_recovery_threshold(self):
        code = CyclicRepetitionCode(num_workers=10, num_stragglers=3, seed=0)
        assert code.recovery_threshold == 7

    def test_zero_stragglers_is_identity(self):
        code = CyclicRepetitionCode(num_workers=4, num_stragglers=0)
        np.testing.assert_array_equal(code.encoding_matrix, np.eye(4))

    def test_any_n_minus_s_subset_decodes(self):
        n, s = 8, 2
        code = CyclicRepetitionCode(num_workers=n, num_stragglers=s, seed=1)
        for subset in itertools.combinations(range(n), n - s):
            assert code.is_decodable(list(subset)), f"subset {subset} failed"

    def test_fewer_than_threshold_workers_generally_insufficient(self):
        n, s = 8, 2
        code = CyclicRepetitionCode(num_workers=n, num_stragglers=s, seed=1)
        # A contiguous run of n - s - 1 workers misses some partition entirely.
        assert not code.is_decodable(list(range(n - s - 2)))

    def test_decode_recovers_gradient_sum(self, rng):
        n, s = 6, 2
        code = CyclicRepetitionCode(num_workers=n, num_stragglers=s, seed=2)
        partition_gradients = rng.standard_normal((n, 5))
        total = partition_gradients.sum(axis=0)
        surviving = [0, 2, 3, 5]  # any n - s workers
        messages = np.vstack([code.encode(w, partition_gradients) for w in surviving])
        np.testing.assert_allclose(code.decode(surviving, messages), total, atol=1e-8)

    def test_from_load(self):
        code = CyclicRepetitionCode.from_load(10, load=4, seed=0)
        assert code.num_stragglers == 3
        assert code.computational_load() == 4

    def test_invalid_straggler_count(self):
        with pytest.raises(ConfigurationError):
            CyclicRepetitionCode(num_workers=4, num_stragglers=4)
        with pytest.raises(ConfigurationError):
            CyclicRepetitionCode(num_workers=4, num_stragglers=-1)

    def test_reproducible_given_seed(self):
        a = CyclicRepetitionCode(5, 2, seed=3).encoding_matrix
        b = CyclicRepetitionCode(5, 2, seed=3).encoding_matrix
        np.testing.assert_array_equal(a, b)


class TestReedSolomonStyleCode:
    def test_deterministic(self):
        a = ReedSolomonStyleCode(7, 2).encoding_matrix
        b = ReedSolomonStyleCode(7, 2).encoding_matrix
        np.testing.assert_array_equal(a, b)

    def test_support_and_load(self):
        code = ReedSolomonStyleCode(7, 3)
        assert code.computational_load() == 4
        assert code.recovery_threshold == 4

    def test_contiguous_survivor_sets_decode(self):
        n, s = 8, 2
        code = ReedSolomonStyleCode(n, s)
        for start in range(n):
            survivors = [(start + i) % n for i in range(n - s)]
            assert code.is_decodable(survivors)

    def test_decode_recovers_gradient_sum(self, rng):
        n, s = 6, 2
        code = ReedSolomonStyleCode(n, s)
        partition_gradients = rng.standard_normal((n, 3))
        total = partition_gradients.sum(axis=0)
        survivors = list(range(1, n - 1))  # 4 contiguous workers
        messages = np.vstack([code.encode(w, partition_gradients) for w in survivors])
        np.testing.assert_allclose(code.decode(survivors, messages), total, atol=1e-8)

    def test_zero_stragglers_identity(self):
        np.testing.assert_array_equal(
            ReedSolomonStyleCode(3, 0).encoding_matrix, np.eye(3)
        )


class TestFractionalRepetitionCode:
    def test_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            FractionalRepetitionCode(num_workers=7, num_stragglers=1)

    def test_group_structure(self):
        code = FractionalRepetitionCode(num_workers=6, num_stragglers=2)
        assert len(code.groups) == 3
        assert all(len(group) == 2 for group in code.groups)
        # Every group's supports cover all partitions disjointly.
        for group in code.groups:
            covered = np.concatenate([code.support(worker) for worker in group])
            assert sorted(covered.tolist()) == list(range(6))

    def test_decodable_exactly_when_a_group_is_complete(self):
        code = FractionalRepetitionCode(num_workers=6, num_stragglers=2)
        group = code.groups[1]
        assert code.is_decodable(list(group))
        assert not code.is_decodable([code.groups[0][0], code.groups[1][0]])

    def test_worst_case_threshold_guarantee(self):
        # Any n - s workers must contain a complete group (pigeonhole).
        n, s = 6, 2
        code = FractionalRepetitionCode(num_workers=n, num_stragglers=s)
        for subset in itertools.combinations(range(n), n - s):
            assert code.is_decodable(list(subset))

    def test_decode_sums_one_group(self, rng):
        code = FractionalRepetitionCode(num_workers=6, num_stragglers=2)
        partition_gradients = rng.standard_normal((6, 4))
        total = partition_gradients.sum(axis=0)
        # Receive group 0 plus a worker from group 2.
        workers = list(code.groups[0]) + [code.groups[2][0]]
        messages = np.vstack([code.encode(w, partition_gradients) for w in workers])
        np.testing.assert_allclose(code.decode(workers, messages), total, atol=1e-10)

    def test_decoding_without_complete_group_raises(self):
        code = FractionalRepetitionCode(num_workers=4, num_stragglers=1)
        with pytest.raises(DecodingError):
            code.decoding_vector([code.groups[0][0], code.groups[1][0]])

    def test_opportunistic_early_decode(self):
        # With 4 groups of 2 workers, hearing both members of one group (2
        # workers) decodes even though the worst-case threshold is n - s = 6.
        code = FractionalRepetitionCode(num_workers=8, num_stragglers=3)
        group = code.groups[0]
        assert len(group) == 2
        assert code.is_decodable(list(group))
