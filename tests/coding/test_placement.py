"""Tests for the placement generators."""

import numpy as np
import pytest

from repro.coding.placement import (
    bcc_placement,
    cyclic_placement,
    group_placement,
    heterogeneous_random_placement,
    random_subset_placement,
    uncoded_placement,
)
from repro.datasets.batching import make_batches
from repro.exceptions import AssignmentError


class TestUncodedPlacement:
    def test_disjoint_full_coverage(self):
        assignment = uncoded_placement(10, 3)
        assert assignment.is_complete()
        assert assignment.total_load == 10
        assert assignment.example_multiplicity().max() == 1

    def test_more_workers_than_examples_rejected(self):
        with pytest.raises(AssignmentError):
            uncoded_placement(2, 3)


class TestBCCPlacement:
    def test_each_worker_gets_exactly_one_batch(self, rng):
        spec = make_batches(20, 5)
        assignment, choices = bcc_placement(spec, 12, rng)
        assert assignment.num_workers == 12
        assert choices.shape == (12,)
        for worker, batch in enumerate(choices):
            np.testing.assert_array_equal(
                assignment.worker_indices(worker), spec.batch_indices(int(batch))
            )

    def test_choices_are_uniform_ish(self):
        spec = make_batches(20, 5)  # 4 batches
        _, choices = bcc_placement(spec, 4000, rng=0)
        counts = np.bincount(choices, minlength=4)
        assert counts.min() > 800  # each batch ~1000 +- noise

    def test_reproducible(self):
        spec = make_batches(12, 3)
        _, first = bcc_placement(spec, 10, rng=7)
        _, second = bcc_placement(spec, 10, rng=7)
        np.testing.assert_array_equal(first, second)


class TestRandomSubsetPlacement:
    def test_each_worker_gets_load_distinct_examples(self, rng):
        assignment = random_subset_placement(20, 8, 5, rng)
        assert all(len(np.unique(idx)) == 5 for idx in assignment.assignments)

    def test_load_cannot_exceed_m(self):
        with pytest.raises(AssignmentError):
            random_subset_placement(4, 2, 5)


class TestCyclicPlacement:
    def test_windows_wrap_around(self):
        assignment = cyclic_placement(5, 5, 3)
        np.testing.assert_array_equal(assignment.worker_indices(0), [0, 1, 2])
        np.testing.assert_array_equal(assignment.worker_indices(4), [0, 1, 4])

    def test_every_item_equally_replicated(self):
        assignment = cyclic_placement(6, 6, 2)
        np.testing.assert_array_equal(assignment.example_multiplicity(), 2)

    def test_load_cannot_exceed_items(self):
        with pytest.raises(AssignmentError):
            cyclic_placement(3, 3, 4)


class TestHeterogeneousPlacement:
    def test_loads_respected_without_replacement(self, rng):
        loads = [3, 0, 5, 1]
        assignment = heterogeneous_random_placement(10, loads, rng)
        assert assignment.loads.tolist() == loads

    def test_with_replacement_deduplicates(self, rng):
        assignment = heterogeneous_random_placement(
            4, [10], rng, with_replacement=True
        )
        # At most 4 distinct examples can remain after deduplication.
        assert assignment.loads[0] <= 4

    def test_load_exceeding_m_without_replacement_rejected(self):
        with pytest.raises(AssignmentError):
            heterogeneous_random_placement(4, [5], with_replacement=False)

    def test_negative_load_rejected(self):
        with pytest.raises(AssignmentError):
            heterogeneous_random_placement(4, [-1])


class TestGroupPlacement:
    def test_groups_replicate_dataset(self):
        assignment = group_placement(num_examples=8, num_groups=3, workers_per_group=4)
        assert assignment.num_workers == 12
        # Each group of 4 consecutive workers covers the whole dataset.
        for group in range(3):
            workers = list(range(group * 4, (group + 1) * 4))
            assert assignment.covers_all(workers)
        np.testing.assert_array_equal(assignment.example_multiplicity(), 3)

    def test_too_many_workers_per_group_rejected(self):
        with pytest.raises(AssignmentError):
            group_placement(num_examples=3, num_groups=2, workers_per_group=4)
