"""Tests for the coupon-collector mathematics."""

import numpy as np
import pytest

from repro.analysis.coupon import (
    coupon_draw_variance,
    coupon_tail_bound,
    coverage_probability_after_draws,
    expected_coupon_draws,
    harmonic_number,
    simulate_coupon_draws,
)


class TestHarmonicNumber:
    def test_base_cases(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_asymptotics(self):
        n = 100_000
        assert harmonic_number(n) == pytest.approx(np.log(n) + 0.5772156649, abs=1e-4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)


class TestExpectedDraws:
    def test_small_cases(self):
        assert expected_coupon_draws(1) == 1.0
        assert expected_coupon_draws(2) == pytest.approx(3.0)
        assert expected_coupon_draws(3) == pytest.approx(5.5)

    def test_formula(self):
        n = 37
        assert expected_coupon_draws(n) == pytest.approx(n * harmonic_number(n))

    def test_invalid(self):
        with pytest.raises((ValueError, TypeError)):
            expected_coupon_draws(0)


class TestVariance:
    def test_single_type_has_zero_variance(self):
        assert coupon_draw_variance(1) == 0.0

    def test_two_types(self):
        # Phase 2 is geometric(1/2): variance (1-p)/p^2 = 2.
        assert coupon_draw_variance(2) == pytest.approx(2.0)

    def test_positive_and_growing(self):
        assert coupon_draw_variance(10) < coupon_draw_variance(50)


class TestTailBound:
    def test_lemma2_values(self):
        assert coupon_tail_bound(10, 0.0) == 1.0
        assert coupon_tail_bound(10, 1.0) == pytest.approx(0.1)
        assert coupon_tail_bound(100, 2.0) == pytest.approx(1e-4)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            coupon_tail_bound(10, -0.5)

    def test_bound_holds_empirically(self):
        # Check Pr[M >= (1+eps) N log N] <= N^{-eps} by simulation.
        num_types, epsilon = 20, 0.5
        draws = simulate_coupon_draws(num_types, rng=0, num_trials=2000)
        threshold = (1 + epsilon) * num_types * np.log(num_types)
        empirical = np.mean(draws >= threshold)
        assert empirical <= coupon_tail_bound(num_types, epsilon) + 0.02


class TestCoverageProbability:
    def test_impossible_before_n_draws(self):
        assert coverage_probability_after_draws(5, 4) == 0.0
        assert coverage_probability_after_draws(5, 0) == 0.0

    def test_single_type(self):
        assert coverage_probability_after_draws(1, 1) == 1.0

    def test_two_types_closed_form(self):
        # P(covered after D draws) = 1 - 2 * (1/2)^D for N = 2.
        for draws in [2, 3, 5, 10]:
            expected = 1 - 2 * 0.5**draws
            assert coverage_probability_after_draws(2, draws) == pytest.approx(expected)

    def test_monotone_in_draws(self):
        values = [coverage_probability_after_draws(6, d) for d in range(6, 60, 6)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_matches_simulation(self):
        num_types, num_draws = 8, 25
        draws = simulate_coupon_draws(num_types, rng=1, num_trials=3000)
        empirical = np.mean(draws <= num_draws)
        analytic = coverage_probability_after_draws(num_types, num_draws)
        assert empirical == pytest.approx(analytic, abs=0.03)


class TestSimulateCouponDraws:
    def test_minimum_is_num_types(self):
        draws = simulate_coupon_draws(7, rng=0, num_trials=200)
        assert draws.min() >= 7

    def test_mean_matches_closed_form(self):
        num_types = 12
        draws = simulate_coupon_draws(num_types, rng=0, num_trials=3000)
        assert np.mean(draws) == pytest.approx(expected_coupon_draws(num_types), rel=0.05)

    def test_single_type_always_one_draw(self):
        draws = simulate_coupon_draws(1, rng=0, num_trials=10)
        np.testing.assert_array_equal(draws, 1)

    def test_max_draws_cap(self):
        draws = simulate_coupon_draws(50, rng=0, num_trials=5, max_draws=10)
        assert draws.max() <= 10

    def test_reproducible(self):
        a = simulate_coupon_draws(9, rng=3, num_trials=20)
        b = simulate_coupon_draws(9, rng=3, num_trials=20)
        np.testing.assert_array_equal(a, b)
