"""Tolerance-pinned accuracy regression for repro.analysis.runtime_prediction.

The module docstring (and the docs site) claims ~15 % agreement with the
discrete-event simulator over the paper's EC2 parameter range. This test pins
that claim so it cannot silently rot: every (scenario, scheme, load) cell of
the EC2-like grid must predict the simulator's placement-averaged mean
iteration time — and its recovery threshold — within 15 % relative error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.runtime_prediction import predict_iteration_time
from repro.experiments.ec2 import EC2LikeConfig, ec2_like_cluster
from repro.schemes.registry import scheme_from_config
from repro.simulation.job import simulate_job

TOLERANCE = 0.15
PLACEMENTS = 4
ITERATIONS = 250
UNIT_SIZE = 100

#: The paper's two scenarios (Tables I / II) and its computational loads.
SCENARIOS = [(50, 50), (100, 100)]
CASES = [
    ("uncoded", None),
    ("bcc", 5),
    ("bcc", 10),
    ("bcc", 25),
    ("cyclic-repetition", 10),
    ("randomized", 10),
]


def _config(scheme: str, load) -> dict:
    if load is None:
        return {"name": scheme}
    return {"name": scheme, "load": load}


@pytest.mark.parametrize("num_workers,num_units", SCENARIOS)
@pytest.mark.parametrize("scheme,load", CASES, ids=lambda v: str(v))
def test_prediction_within_fifteen_percent_of_simulation(
    num_workers, num_units, scheme, load
):
    ec2 = EC2LikeConfig()
    cluster = ec2_like_cluster(num_workers, ec2)
    prediction = predict_iteration_time(
        scheme,
        num_units,
        num_workers,
        load if load is not None else max(num_units // num_workers, 1),
        UNIT_SIZE,
        compute=cluster.workers[0].compute,
        communication=cluster.communication,
    )

    mean_times = []
    thresholds = []
    for seed in range(PLACEMENTS):
        job = simulate_job(
            scheme_from_config(_config(scheme, load)),
            cluster,
            num_units,
            ITERATIONS,
            rng=seed,
            unit_size=UNIT_SIZE,
            serialize_master_link=False,
            engine="vectorized",
        )
        mean_times.append(job.total_time / ITERATIONS)
        thresholds.append(job.average_recovery_threshold)
    simulated_time = float(np.mean(mean_times))
    simulated_threshold = float(np.mean(thresholds))

    time_error = abs(prediction.total_time - simulated_time) / simulated_time
    assert time_error <= TOLERANCE, (
        f"{scheme} (r={load}, n={num_workers}): predicted "
        f"{prediction.total_time:.5f}s vs simulated {simulated_time:.5f}s "
        f"({100 * time_error:.1f}% off)"
    )
    threshold_error = (
        abs(prediction.recovery_threshold - simulated_threshold)
        / simulated_threshold
    )
    assert threshold_error <= TOLERANCE, (
        f"{scheme} (r={load}, n={num_workers}): predicted threshold "
        f"{prediction.recovery_threshold:.2f} vs simulated "
        f"{simulated_threshold:.2f} ({100 * threshold_error:.1f}% off)"
    )
