"""The benchmark-history file guard: corrupt files are preserved, not erased.

Regression under test: ``append_validation_record`` used to silently
discard an unparseable ``BENCH_sweep.json`` and overwrite it with a fresh
history — one interrupted writer could erase the whole perf trajectory.
``load_benchmark_history`` now backs the corrupt file up to ``*.corrupt``
and warns; every appender of the history (the validate CLI,
``bench_sweep.py``, ``bench_tune.py``) shares the guard.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.validation import (
    SchemeValidation,
    ValidationReport,
    append_validation_record,
    golden_scenarios,
    load_benchmark_history,
)


def make_report() -> ValidationReport:
    return ValidationReport(
        scenario=golden_scenarios()[0],
        results=[
            SchemeValidation(
                scheme_name="bcc",
                observed_seconds=1.05,
                predicted_seconds=1.0,
                tolerance=0.35,
            )
        ],
    )


class TestLoadBenchmarkHistory:
    def test_missing_file_starts_fresh_without_warning(self, tmp_path):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            history = load_benchmark_history(tmp_path / "BENCH_sweep.json")
        assert history == {"benchmark": "bench_sweep", "runs": []}

    def test_valid_history_loads_verbatim(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        stored = {"benchmark": "bench_sweep", "runs": [{"test": "x"}]}
        path.write_text(json.dumps(stored))
        assert load_benchmark_history(path) == stored

    def test_corrupt_file_is_backed_up_and_warned_about(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text("{ not json at all")
        with pytest.warns(UserWarning, match="corrupt"):
            history = load_benchmark_history(path)
        assert history == {"benchmark": "bench_sweep", "runs": []}
        backup = tmp_path / "BENCH_sweep.json.corrupt"
        assert backup.read_text() == "{ not json at all"
        assert not path.exists()

    def test_wrong_shape_counts_as_corrupt(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text(json.dumps(["not", "a", "mapping"]))
        with pytest.warns(UserWarning, match="corrupt"):
            history = load_benchmark_history(path)
        assert history["runs"] == []
        assert (tmp_path / "BENCH_sweep.json.corrupt").exists()


class TestAppendValidationRecord:
    def test_append_to_fresh_and_existing_history(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        append_validation_record(make_report(), path, timestamp="t0")
        append_validation_record(make_report(), path, timestamp="t1", quick=True)
        history = json.loads(path.read_text())
        assert [run["timestamp"] for run in history["runs"]] == ["t0", "t1"]
        assert history["runs"][1]["quick"] is True

    def test_corrupt_history_is_preserved_not_overwritten(self, tmp_path):
        """The regression: the old code overwrote the corrupt file silently."""
        path = tmp_path / "BENCH_sweep.json"
        path.write_text('{"benchmark": "bench_sweep", "runs": [  TRUNCATED')
        with pytest.warns(UserWarning, match=r"\.corrupt"):
            append_validation_record(make_report(), path, timestamp="t0")
        # The damaged trajectory survives next to the fresh history.
        backup = tmp_path / "BENCH_sweep.json.corrupt"
        assert "TRUNCATED" in backup.read_text()
        history = json.loads(path.read_text())
        assert len(history["runs"]) == 1
        assert history["runs"][0]["timestamp"] == "t0"
