"""Tests for the per-scheme recovery-threshold / communication-load formulas."""

import math

import numpy as np
import pytest

from repro.analysis.coupon import harmonic_number
from repro.analysis.thresholds import (
    bcc_communication_load,
    bcc_recovery_threshold,
    cyclic_repetition_communication_load,
    cyclic_repetition_recovery_threshold,
    lower_bound_recovery_threshold,
    randomized_communication_load,
    randomized_recovery_threshold,
    scheme_formula_registry,
    uncoded_communication_load,
    uncoded_recovery_threshold,
)
from repro.exceptions import ConfigurationError


class TestLowerBound:
    def test_value(self):
        assert lower_bound_recovery_threshold(100, 10) == 10.0
        assert lower_bound_recovery_threshold(100, 100) == 1.0

    def test_load_cannot_exceed_m(self):
        with pytest.raises(ConfigurationError):
            lower_bound_recovery_threshold(10, 11)


class TestBCCThreshold:
    def test_paper_equation_2(self):
        # K_BCC(r) = ceil(m/r) * H_ceil(m/r)
        m, r = 100, 10
        assert bcc_recovery_threshold(m, r) == pytest.approx(10 * harmonic_number(10))

    def test_non_divisible_load_uses_ceiling(self):
        m, r = 100, 30  # ceil(100/30) = 4 batches
        assert bcc_recovery_threshold(m, r) == pytest.approx(4 * harmonic_number(4))

    def test_full_load_gives_one(self):
        assert bcc_recovery_threshold(50, 50) == pytest.approx(1.0)

    def test_sandwich_of_theorem1(self):
        for m in [20, 50, 100]:
            for r in [1, 2, 5, 10, m]:
                lower = lower_bound_recovery_threshold(m, r)
                upper = bcc_recovery_threshold(m, r)
                num_batches = math.ceil(m / r)
                assert lower <= upper + 1e-12
                assert upper <= math.ceil(lower) * harmonic_number(num_batches) + 1e-9

    def test_communication_load_equals_threshold(self):
        assert bcc_communication_load(100, 10) == bcc_recovery_threshold(100, 10)

    def test_scenario_one_value_matches_observation(self):
        # Scenario one: m = 50 batches, r = 10 -> 5 batches, K ~= 11.4; the
        # paper observes the master waiting for ~11 workers on average.
        assert bcc_recovery_threshold(50, 10) == pytest.approx(5 * harmonic_number(5))
        assert 10.5 <= bcc_recovery_threshold(50, 10) <= 12.0


class TestUncoded:
    def test_threshold_is_n(self):
        assert uncoded_recovery_threshold(100, 50) == 50.0
        assert uncoded_communication_load(100, 50) == 50.0


class TestCyclicRepetition:
    def test_equation_7(self):
        assert cyclic_repetition_recovery_threshold(100, 10) == 91.0
        assert cyclic_repetition_recovery_threshold(50, 10) == 41.0

    def test_equation_8(self):
        assert cyclic_repetition_communication_load(100, 10) == 91.0

    def test_full_load(self):
        assert cyclic_repetition_recovery_threshold(20, 20) == 1.0


class TestRandomized:
    def test_full_load_needs_one_worker(self):
        assert randomized_recovery_threshold(30, 30) == 1.0

    def test_unit_load_is_coupon_collector(self):
        # With r = 1 the scheme is exactly the classic coupon collector.
        m = 25
        assert randomized_recovery_threshold(m, 1) == pytest.approx(
            m * harmonic_number(m), rel=1e-9
        )

    def test_exact_value_between_bounds(self):
        m, r = 60, 6
        exact = randomized_recovery_threshold(m, r)
        assert exact >= m / r
        # The (m/r) log m approximation is the right order of magnitude.
        assert exact <= 3.0 * (m / r) * math.log(m)

    def test_approximation_flag(self):
        m, r = 100, 10
        approx = randomized_recovery_threshold(m, r, exact=False)
        assert approx == pytest.approx((m / r) * math.log(m))

    def test_matches_monte_carlo(self):
        m, r = 20, 4
        exact = randomized_recovery_threshold(m, r)
        rng = np.random.default_rng(0)
        counts = []
        for _ in range(2000):
            covered = np.zeros(m, dtype=bool)
            workers = 0
            while not covered.all():
                covered[rng.choice(m, size=r, replace=False)] = True
                workers += 1
            counts.append(workers)
        assert np.mean(counts) == pytest.approx(exact, rel=0.05)

    def test_communication_load_is_r_times_threshold(self):
        m, r = 40, 5
        assert randomized_communication_load(m, r) == pytest.approx(
            r * randomized_recovery_threshold(m, r)
        )

    def test_monotone_decreasing_in_load(self):
        m = 50
        values = [randomized_recovery_threshold(m, r) for r in (1, 2, 5, 10, 25)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestRegistry:
    def test_contains_all_schemes(self):
        registry = scheme_formula_registry()
        assert set(registry) == {
            "lower-bound",
            "bcc",
            "uncoded",
            "cyclic-repetition",
            "randomized",
        }

    def test_entries_are_callable(self):
        registry = scheme_formula_registry()
        assert registry["bcc"].recovery_threshold(100, 10) == pytest.approx(
            bcc_recovery_threshold(100, 10)
        )
        assert registry["cyclic-repetition"].communication_load(100, 10) == 91.0
