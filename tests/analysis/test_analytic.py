"""Unit tests of the closed-form runtime estimators in repro.analysis.analytic."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.analytic import (
    AnalyticIteration,
    coupon_threshold_pmf,
    expected_arrivals_until_group_complete,
    fractional_group_runtime,
    homogeneous_compute_parameters,
    maximum_runtime,
    normal_quantile,
    order_statistic_runtime,
    transfer_parameters,
    worker_compute_parameters,
)
from repro.analysis.coupon import (
    coverage_probability_after_draws,
    expected_coupon_draws,
    harmonic_number,
)
from repro.analysis.order_statistics import expected_kth_exponential_order_statistic
from repro.cluster.spec import ClusterSpec
from repro.exceptions import AnalyticIntractableError
from repro.stragglers.communication import (
    CommunicationModel,
    LinearCommunicationModel,
    ZeroCommunicationModel,
)
from repro.stragglers.models import (
    BimodalStragglerDelay,
    DeterministicDelay,
    ExponentialDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
)


class TestParameterExtraction:
    def test_shift_exponential_parameters(self):
        det, tail = worker_compute_parameters(
            ShiftedExponentialDelay(straggling=4.0, shift=0.5)
        )
        assert det == 0.5
        assert tail == 0.25

    def test_deterministic_parameters(self):
        det, tail = worker_compute_parameters(DeterministicDelay(0.125))
        assert det == 0.125
        assert tail == 0.0

    @pytest.mark.parametrize(
        "model", [ParetoDelay(), BimodalStragglerDelay()], ids=["pareto", "bimodal"]
    )
    def test_unsupported_delay_models_raise(self, model):
        with pytest.raises(AnalyticIntractableError, match="no closed-form"):
            worker_compute_parameters(model)

    def test_sample_override_raises(self):
        class Custom(ShiftedExponentialDelay):
            def sample(self, load, rng=None, size=None):  # pragma: no cover
                return 0.0

        with pytest.raises(AnalyticIntractableError, match="overrides sample"):
            worker_compute_parameters(Custom())

    def test_heterogeneous_cluster_rejected_for_homogeneous_forms(self):
        cluster = ClusterSpec.shifted_exponential([1.0, 2.0], [0.0, 0.0])
        with pytest.raises(AnalyticIntractableError, match="homogeneous"):
            homogeneous_compute_parameters(cluster)

    def test_transfer_parameters(self):
        fixed, jitter = transfer_parameters(
            LinearCommunicationModel(latency=0.1, seconds_per_unit=0.5, jitter=0.2),
            3.0,
        )
        assert fixed == pytest.approx(0.1 + 1.5)
        assert jitter == 0.2
        assert transfer_parameters(ZeroCommunicationModel(), 5.0) == (0.0, 0.0)

    def test_unknown_communication_model_raises(self):
        class Weird(CommunicationModel):
            def sample(self, message_size, rng=None, size=None):  # pragma: no cover
                return 1.0

            def mean(self, message_size):  # pragma: no cover
                return 1.0

        with pytest.raises(AnalyticIntractableError, match="transfer model"):
            transfer_parameters(Weird(), 1.0)


class TestNormalQuantile:
    def test_reference_values(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-8)
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)
        assert normal_quantile(0.9) == pytest.approx(1.281552, abs=1e-4)

    def test_rejects_degenerate_levels(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestCouponThresholdPmf:
    def test_matches_exact_inclusion_exclusion(self):
        num_types, num_workers = 8, 40
        pmf = coupon_threshold_pmf(num_types, num_workers)
        total = coverage_probability_after_draws(num_types, num_workers)
        previous = 0.0
        for draws in range(num_types, num_workers + 1):
            current = coverage_probability_after_draws(num_types, draws)
            assert pmf.get(draws, 0.0) == pytest.approx(
                (current - previous) / total, abs=1e-12
            )
            previous = current
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_mean_approaches_unconditional_expectation(self):
        # With a generous worker cap the conditioning is negligible.
        pmf = coupon_threshold_pmf(10, 400)
        mean = sum(k * p for k, p in pmf.items())
        assert mean == pytest.approx(expected_coupon_draws(10), rel=1e-6)

    def test_infeasible_raises(self):
        with pytest.raises(AnalyticIntractableError, match="impossible"):
            coupon_threshold_pmf(10, 5)

    def test_oversized_problem_falls_back_to_none(self):
        assert coupon_threshold_pmf(10_000, 10_000) is None


class TestGroupCompletionIndex:
    def test_single_group_needs_every_member(self):
        assert expected_arrivals_until_group_complete(1, 7) == pytest.approx(7.0)

    def test_singleton_groups_complete_on_first_draw(self):
        assert expected_arrivals_until_group_complete(9, 1) == pytest.approx(1.0)

    def test_monte_carlo_agreement(self, rng):
        groups, size = 4, 3
        workers = np.arange(groups * size)
        counts = []
        for _ in range(4000):
            order = rng.permutation(workers)
            seen = np.zeros(groups, dtype=int)
            for position, worker in enumerate(order, start=1):
                group = worker // size
                seen[group] += 1
                if seen[group] == size:
                    counts.append(position)
                    break
        expected = expected_arrivals_until_group_complete(groups, size)
        assert expected == pytest.approx(np.mean(counts), rel=0.02)


class TestOrderStatisticRuntime:
    def test_matches_exponential_order_statistic_exactly(self):
        # No jitter, no deterministic parts: the mean must equal the
        # classical harmonic-sum identity with no approximation error.
        n, k, rate = 20, 15, 2.0
        estimate = order_statistic_runtime(
            scheme="test",
            num_workers=n,
            threshold=float(k),
            compute_deterministic=0.0,
            compute_tail_mean=1.0 / rate,
            transfer_fixed=0.0,
            transfer_jitter_mean=0.0,
            message_size=1.0,
            serialize_master_link=False,
        )
        assert estimate.total_time == pytest.approx(
            expected_kth_exponential_order_statistic(n, k, rate=rate)
        )
        assert estimate.recovery_threshold == k
        assert estimate.mode == "parallel"

    def test_deterministic_models_have_zero_spread(self):
        estimate = order_statistic_runtime(
            scheme="test",
            num_workers=10,
            threshold=10.0,
            compute_deterministic=2.0,
            compute_tail_mean=0.0,
            transfer_fixed=0.5,
            transfer_jitter_mean=0.0,
            message_size=1.0,
            serialize_master_link=False,
        )
        assert estimate.total_time == pytest.approx(2.5)
        assert estimate.variance == 0.0
        assert all(v == pytest.approx(2.5) for v in estimate.quantiles.values())

    def test_quantiles_are_monotone_and_bracket_the_median(self):
        estimate = order_statistic_runtime(
            scheme="test",
            num_workers=30,
            threshold=25.0,
            compute_deterministic=1.0,
            compute_tail_mean=0.5,
            transfer_fixed=0.1,
            transfer_jitter_mean=0.05,
            message_size=1.0,
            serialize_master_link=False,
            quantiles=(0.1, 0.5, 0.9, 0.99),
        )
        values = [estimate.quantiles[q] for q in (0.1, 0.5, 0.9, 0.99)]
        assert values == sorted(values)
        assert values[0] < estimate.total_time < values[-1]

    def test_mixture_mean_is_pmf_weighted(self):
        kwargs = dict(
            scheme="test",
            num_workers=12,
            compute_deterministic=0.0,
            compute_tail_mean=1.0,
            transfer_fixed=0.0,
            transfer_jitter_mean=0.0,
            message_size=1.0,
            serialize_master_link=False,
        )
        mixed = order_statistic_runtime(threshold={4: 0.5, 8: 0.5}, **kwargs)
        low = order_statistic_runtime(threshold=4.0, **kwargs)
        high = order_statistic_runtime(threshold=8.0, **kwargs)
        assert mixed.total_time == pytest.approx(
            0.5 * low.total_time + 0.5 * high.total_time
        )
        assert mixed.recovery_threshold == pytest.approx(6.0)

    def test_serialized_link_charges_the_queue(self):
        # Deterministic compute + deterministic transfers: the serialised
        # master drains n messages back to back, so the exact total is
        # compute + n * transfer.
        estimate = order_statistic_runtime(
            scheme="test",
            num_workers=8,
            threshold=8.0,
            compute_deterministic=1.0,
            compute_tail_mean=0.0,
            transfer_fixed=0.25,
            transfer_jitter_mean=0.0,
            message_size=1.0,
            serialize_master_link=True,
        )
        assert estimate.mode == "serialized"
        assert estimate.total_time == pytest.approx(1.0 + 8 * 0.25)


class TestFractionalGroupRuntime:
    def test_reduces_to_maximum_for_one_group(self):
        n = 12
        estimate = fractional_group_runtime(
            scheme="test",
            num_groups=1,
            group_size=n,
            compute_deterministic=0.0,
            compute_tail_mean=1.0,
            transfer_fixed=0.0,
            transfer_jitter_mean=0.0,
            message_size=1.0,
            serialize_master_link=False,
        )
        assert estimate.total_time == pytest.approx(harmonic_number(n))

    def test_reduces_to_minimum_for_singleton_groups(self):
        n = 12
        estimate = fractional_group_runtime(
            scheme="test",
            num_groups=n,
            group_size=1,
            compute_deterministic=0.0,
            compute_tail_mean=1.0,
            transfer_fixed=0.0,
            transfer_jitter_mean=0.0,
            message_size=1.0,
            serialize_master_link=False,
        )
        # min of n unit-mean exponentials has mean 1/n.
        assert estimate.total_time == pytest.approx(1.0 / n)

    def test_monte_carlo_agreement(self, rng):
        groups, size, tail = 3, 4, 0.7
        samples = rng.exponential(scale=tail, size=(20000, groups, size))
        empirical = samples.max(axis=2).min(axis=1).mean()
        estimate = fractional_group_runtime(
            scheme="test",
            num_groups=groups,
            group_size=size,
            compute_deterministic=0.0,
            compute_tail_mean=tail,
            transfer_fixed=0.0,
            transfer_jitter_mean=0.0,
            message_size=1.0,
            serialize_master_link=False,
        )
        assert estimate.total_time == pytest.approx(empirical, rel=0.02)


class TestMaximumRuntime:
    def test_homogeneous_maximum_matches_harmonic_sum(self):
        n, tail = 15, 0.4
        estimate = maximum_runtime(
            scheme="test",
            arrival_parameters=[(0.0, tail)] * n,
            compute_parameters=[(0.0, tail)] * n,
            communication_load=float(n),
        )
        assert estimate.total_time == pytest.approx(
            tail * harmonic_number(n), rel=1e-3
        )
        assert estimate.recovery_threshold == n

    def test_two_group_maximum_monte_carlo(self, rng):
        fast = rng.exponential(scale=0.2, size=(20000, 5))
        slow = 1.0 + rng.exponential(scale=1.0, size=(20000, 3))
        empirical = np.maximum(fast.max(axis=1), slow.max(axis=1)).mean()
        estimate = maximum_runtime(
            scheme="test",
            arrival_parameters=[(0.0, 0.2)] * 5 + [(1.0, 1.0)] * 3,
            compute_parameters=[(0.0, 0.2)] * 5 + [(1.0, 1.0)] * 3,
            communication_load=8.0,
        )
        assert estimate.total_time == pytest.approx(empirical, rel=0.02)


class TestTotalRuntimeQuantiles:
    def test_single_iteration_passthrough_and_clt_scaling(self):
        estimate = AnalyticIteration(
            scheme="test",
            total_time=2.0,
            computation_time=1.0,
            communication_time=1.0,
            recovery_threshold=3.0,
            communication_load=3.0,
            workers_finished_compute=3.0,
            variance=0.25,
            quantiles={0.5: 2.0, 0.9: 2.5},
            mode="parallel",
        )
        assert estimate.total_runtime_quantiles(1) == {0.5: 2.0, 0.9: 2.5}
        totals = estimate.total_runtime_quantiles(100)
        assert totals[0.5] == pytest.approx(200.0, abs=1e-9)
        # sigma_total = sqrt(100 * 0.25) = 5; the 90th percentile sits
        # ~1.28 sigma above the mean.
        assert totals[0.9] == pytest.approx(200.0 + 5 * 1.281552, abs=1e-3)
        assert estimate.total_runtime_mean(100) == pytest.approx(200.0)
