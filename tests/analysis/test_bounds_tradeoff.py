"""Tests for the Theorem 1 / Theorem 2 bound evaluators and the Fig. 2 curves."""

import numpy as np
import pytest

from repro.analysis.bounds import (
    theorem1_bounds,
    theorem2_bounds,
    theorem2_constant,
)
from repro.analysis.coupon import harmonic_number
from repro.analysis.tradeoff import tradeoff_curves
from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError


class TestTheorem1Bounds:
    def test_sandwich(self):
        bounds = theorem1_bounds(100, 10)
        assert bounds.lower == pytest.approx(10.0)
        assert bounds.upper == pytest.approx(10 * harmonic_number(10))
        assert bounds.lower <= bounds.upper

    def test_logarithmic_gap(self):
        bounds = theorem1_bounds(100, 10)
        assert bounds.logarithmic_gap == pytest.approx(harmonic_number(10))

    def test_gap_grows_slowly(self):
        small = theorem1_bounds(100, 50).logarithmic_gap
        large = theorem1_bounds(100, 1).logarithmic_gap
        assert small < large
        assert large <= harmonic_number(100) + 1e-9


class TestTheorem2Constant:
    def test_formula(self):
        # c = 2 + log(a + H_n/mu) / log m
        value = theorem2_constant(100, 10, max_shift=20.0, min_straggling=1.0)
        expected = 2.0 + np.log(20.0 + harmonic_number(10) / 1.0) / np.log(100)
        assert value == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theorem2_constant(1, 10, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            theorem2_constant(10, 10, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            theorem2_constant(10, 10, -1.0, 1.0)


class TestTheorem2Bounds:
    @pytest.fixture(scope="class")
    def cluster(self):
        return ClusterSpec.paper_fig5_cluster(num_workers=20, num_fast=2, shift=2.0)

    def test_lower_below_upper(self, cluster):
        bounds = theorem2_bounds(cluster, 30, rng=0, num_trials=150)
        assert bounds.lower <= bounds.upper
        assert bounds.constant > 2.0

    def test_loads_returned(self, cluster):
        bounds = theorem2_bounds(cluster, 30, rng=0, num_trials=60)
        assert bounds.lower_loads.shape == (20,)
        assert bounds.upper_loads.shape == (20,)
        # The inflated-target loads are at least as large in total.
        assert bounds.upper_loads.sum() >= bounds.lower_loads.sum()

    def test_constant_override(self, cluster):
        bounds = theorem2_bounds(cluster, 30, rng=0, num_trials=60, constant=3.0)
        assert bounds.constant == 3.0


class TestTradeoffCurves:
    def test_contains_four_schemes(self):
        curves = tradeoff_curves(100, 100, loads=[5, 10, 20])
        assert set(curves) == {"lower-bound", "bcc", "randomized", "cyclic-repetition"}
        assert all(len(points) == 3 for points in curves.values())

    def test_ordering_between_schemes(self):
        # For the figure's parameter range the ordering is
        # lower bound <= BCC <= randomized and BCC <= CR for small loads.
        curves = tradeoff_curves(100, 100, loads=[5, 10, 20])
        for i in range(3):
            lower = curves["lower-bound"][i].recovery_threshold
            bcc = curves["bcc"][i].recovery_threshold
            randomized = curves["randomized"][i].recovery_threshold
            cyclic = curves["cyclic-repetition"][i].recovery_threshold
            assert lower <= bcc + 1e-9
            assert bcc <= randomized + 1e-9
            assert bcc <= cyclic + 1e-9

    def test_clipped_at_number_of_workers(self):
        curves = tradeoff_curves(100, 100, loads=[1])
        for points in curves.values():
            assert points[0].recovery_threshold <= 100.0

    def test_default_load_range(self):
        curves = tradeoff_curves(20, 20)
        assert [point.load for point in curves["bcc"]] == list(range(1, 11))
