"""Golden-trace fixtures for the cross-validation scenarios.

The deterministic half of each golden validation scenario — its pinned
config, the fault-schedule fingerprint, the availability timeline, and the
simulator-predicted runtimes the observed/predicted gate divides by — is
snapshotted as JSON under ``tests/analysis/golden/``. These tests regenerate
the traces and diff them against the snapshots, so any refactor of the
dynamics processes, the schedule builder, or the timing engines that would
silently move the validation gate's denominator fails here with the exact
field named.

Observed wall-clock seconds are deliberately absent from the fixtures (they
vary run to run); scheme-to-scheme *predicted* ratios are pinned at
``1e-9`` relative tolerance instead.

Regenerate the snapshots (after an *intentional* output change) with::

    PYTHONPATH=src python tests/analysis/test_validation_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.validation import golden_scenarios, golden_trace

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Comparison tolerance: loose enough for cross-platform libm wiggle, tight
#: enough that any real change of the simulated draws or accounting fails.
RELATIVE_TOLERANCE = 1e-9


def _generator(index: int):
    def generate() -> dict:
        return golden_trace(golden_scenarios()[index])

    return generate


FIXTURES = {
    "validate_markov_bursts.json": _generator(0),
    "validate_preempt_respawn.json": _generator(1),
}


def _assert_matches(expected, actual, path=""):
    """Recursive diff with a relative tolerance on floats, exact elsewhere."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected a mapping"
        assert sorted(expected) == sorted(actual), f"{path}: keys differ"
        for key in expected:
            _assert_matches(expected[key], actual[key], f"{path}/{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), f"{path}: lengths differ"
        for index, (left, right) in enumerate(zip(expected, actual)):
            _assert_matches(left, right, f"{path}[{index}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(
            expected, rel=RELATIVE_TOLERANCE, abs=1e-12
        ), f"{path}: {actual!r} drifted from the golden {expected!r}"
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_scenario_trace_matches_golden_snapshot(fixture):
    golden_path = GOLDEN_DIR / fixture
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; regenerate with "
        "`PYTHONPATH=src python tests/analysis/test_validation_golden.py`"
    )
    expected = json.loads(golden_path.read_text())
    actual = FIXTURES[fixture]()
    _assert_matches(expected, actual, path=fixture)


def test_traces_honour_the_schemes_tolerance_contract():
    """Shape/safety invariants the scenarios were seed-searched to satisfy."""
    markov, preempt = (golden_trace(s) for s in golden_scenarios())
    # markov-bursts modulates speed but never vacates a slot — that is what
    # makes it safe for the uncoded scheme.
    assert markov["min_active"] == len(markov["availability"][0])
    # preempt-respawn keeps >= n - 2 slots active (cyclic/RS load 3 tolerate
    # exactly 2 absences) while actually preempting.
    num_workers = len(preempt["availability"][0])
    assert preempt["min_active"] >= num_workers - 2
    vacant = sum(row.count(0) for row in preempt["availability"])
    assert vacant > 0


def test_fixture_regeneration_is_deterministic():
    # The generators must be pure functions of the pinned seeds, otherwise
    # the snapshots could never be trusted in the first place.
    generate = FIXTURES["validate_markov_bursts.json"]
    assert generate() == generate()


if __name__ == "__main__":
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, generate in FIXTURES.items():
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(generate(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
