"""Tests for the order-statistics helpers and the run-time predictor."""

import numpy as np
import pytest

from repro.analysis.coupon import harmonic_number
from repro.analysis.order_statistics import (
    expected_kth_exponential_order_statistic,
    expected_kth_shift_exponential_completion,
    expected_maximum_shift_exponential_completion,
    monte_carlo_kth_completion,
)
from repro.analysis.runtime_prediction import predict_iteration_time
from repro.exceptions import ConfigurationError
from repro.experiments.ec2 import EC2LikeConfig, ec2_like_cluster
from repro.schemes.bcc import BCCScheme
from repro.schemes.uncoded import UncodedScheme
from repro.simulation.job import simulate_job
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ExponentialDelay, ShiftedExponentialDelay


class TestExponentialOrderStatistics:
    def test_minimum_of_n(self):
        # E[min of n Exp(1)] = 1/n.
        assert expected_kth_exponential_order_statistic(10, 1) == pytest.approx(0.1)

    def test_maximum_of_n(self):
        # E[max of n Exp(1)] = H_n.
        assert expected_kth_exponential_order_statistic(7, 7) == pytest.approx(
            harmonic_number(7)
        )

    def test_partial_harmonic_identity(self):
        n, k = 20, 5
        expected = harmonic_number(n) - harmonic_number(n - k)
        assert expected_kth_exponential_order_statistic(n, k) == pytest.approx(expected)

    def test_rate_scaling(self):
        assert expected_kth_exponential_order_statistic(
            6, 3, rate=2.0
        ) == pytest.approx(expected_kth_exponential_order_statistic(6, 3) / 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_kth_exponential_order_statistic(5, 6)
        with pytest.raises(ValueError):
            expected_kth_exponential_order_statistic(5, 3, rate=0.0)

    def test_matches_monte_carlo(self, rng):
        n, k = 12, 4
        samples = rng.exponential(size=(20000, n))
        empirical = np.partition(samples, k - 1, axis=1)[:, k - 1].mean()
        assert expected_kth_exponential_order_statistic(n, k) == pytest.approx(
            empirical, rel=0.03
        )


class TestShiftExponentialCompletions:
    def test_shift_added_to_tail(self):
        model = ShiftedExponentialDelay(straggling=2.0, shift=0.5)
        value = expected_kth_shift_exponential_completion(10, 3, load=4, model=model)
        tail = expected_kth_exponential_order_statistic(10, 3, rate=2.0 / 4)
        assert value == pytest.approx(0.5 * 4 + tail)

    def test_maximum_is_kth_with_k_equals_n(self):
        model = ShiftedExponentialDelay(straggling=1.0, shift=0.0)
        assert expected_maximum_shift_exponential_completion(
            8, 2, model
        ) == pytest.approx(expected_kth_shift_exponential_completion(8, 8, 2, model))

    def test_monte_carlo_agrees_with_closed_form(self):
        model = ShiftedExponentialDelay(straggling=3.0, shift=0.2)
        closed = expected_kth_shift_exponential_completion(15, 6, load=5, model=model)
        sampled = monte_carlo_kth_completion(15, 6, 5, model, rng=0, num_trials=8000)
        assert sampled == pytest.approx(closed, rel=0.05)

    def test_monte_carlo_works_for_arbitrary_models(self):
        value = monte_carlo_kth_completion(
            10, 2, 3, ExponentialDelay(straggling=1.0), rng=1, num_trials=2000
        )
        assert value > 0


class TestRuntimePrediction:
    @pytest.fixture(scope="class")
    def calibration(self):
        config = EC2LikeConfig()
        compute = ShiftedExponentialDelay(
            straggling=config.straggling, shift=config.seconds_per_example
        )
        communication = LinearCommunicationModel(
            latency=config.comm_latency,
            seconds_per_unit=config.comm_seconds_per_unit,
            jitter=config.comm_jitter,
        )
        return compute, communication

    def test_unknown_scheme_rejected(self, calibration):
        compute, communication = calibration
        with pytest.raises(ConfigurationError):
            predict_iteration_time("mystery", 50, 50, 10, 100, compute, communication)

    def test_prediction_orders_schemes_like_the_paper(self, calibration):
        compute, communication = calibration
        predictions = {
            name: predict_iteration_time(name, 50, 50, 10, 100, compute, communication)
            for name in ("uncoded", "cyclic-repetition", "bcc")
        }
        assert (
            predictions["bcc"].total_time
            < predictions["cyclic-repetition"].total_time
            < predictions["uncoded"].total_time
        )

    @pytest.mark.parametrize("scheme_name", ["uncoded", "bcc"])
    def test_prediction_matches_simulator(self, calibration, scheme_name):
        compute, communication = calibration
        prediction = predict_iteration_time(
            scheme_name, 50, 50, 10, 100, compute, communication
        )
        cluster = ec2_like_cluster(50)
        scheme = UncodedScheme() if scheme_name == "uncoded" else BCCScheme(10)
        job = simulate_job(
            scheme,
            cluster,
            num_units=50,
            num_iterations=60,
            rng=0,
            unit_size=100,
            serialize_master_link=False,
        )
        simulated_per_iteration = job.total_time / job.num_iterations
        assert prediction.total_time == pytest.approx(simulated_per_iteration, rel=0.2)

    def test_randomized_prediction_scales_message_size(self, calibration):
        compute, communication = calibration
        bcc = predict_iteration_time("bcc", 50, 50, 10, 100, compute, communication)
        randomized = predict_iteration_time(
            "randomized", 50, 50, 10, 100, compute, communication
        )
        # The randomized scheme ships load-times larger messages, so its fixed
        # transfer component (and overall prediction) must be larger.
        assert randomized.total_time > bcc.total_time
