"""Tests for the multi-iteration job simulator (timing-only and semantic)."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.datasets.batching import make_batches
from repro.datasets.synthetic import LogisticDataConfig, make_paper_logistic_data
from repro.exceptions import SimulationError
from repro.gradients.logistic import LogisticLoss
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.optim.trainer import train
from repro.schemes.bcc import BCCScheme
from repro.schemes.uncoded import UncodedScheme
from repro.simulation.job import JobResult, simulate_job, simulate_training_run
from repro.stragglers.models import DeterministicDelay


class TestSimulateJob:
    def test_iteration_count_and_totals(self, homogeneous_cluster, rng):
        result = simulate_job(
            BCCScheme(load=3), homogeneous_cluster, num_units=12, num_iterations=7, rng=rng
        )
        assert result.num_iterations == 7
        assert result.total_time == pytest.approx(
            sum(outcome.total_time for outcome in result.iterations)
        )
        assert result.total_time >= result.total_computation_time

    def test_accepts_prebuilt_plan(self, homogeneous_cluster, rng):
        plan = UncodedScheme().build_plan(12, 12)
        result = simulate_job(plan, homogeneous_cluster, 12, 3, rng=rng)
        assert result.scheme_name == "uncoded"
        assert result.average_recovery_threshold == 12.0

    def test_summary_keys(self, homogeneous_cluster, rng):
        result = simulate_job(BCCScheme(load=4), homogeneous_cluster, 12, 3, rng=rng)
        summary = result.summary()
        assert set(summary) == {
            "scheme",
            "iterations",
            "recovery_threshold",
            "communication_load",
            "communication_time",
            "computation_time",
            "total_time",
        }

    def test_empty_job_result_raises_on_averages(self):
        with pytest.raises(SimulationError):
            JobResult(scheme_name="x").average_recovery_threshold

    def test_invalid_scheme_type(self, homogeneous_cluster):
        with pytest.raises(SimulationError):
            simulate_job("bcc", homogeneous_cluster, 12, 2, rng=0)

    def test_reproducible_with_same_seed(self, homogeneous_cluster):
        a = simulate_job(BCCScheme(load=3), homogeneous_cluster, 12, 5, rng=42)
        b = simulate_job(BCCScheme(load=3), homogeneous_cluster, 12, 5, rng=42)
        assert a.total_time == pytest.approx(b.total_time)
        assert a.average_recovery_threshold == pytest.approx(b.average_recovery_threshold)

    def test_aggregates_cached_and_invalidated_on_append(self, homogeneous_cluster, rng):
        result = simulate_job(BCCScheme(load=3), homogeneous_cluster, 12, 4, rng=rng)
        first = result.total_time
        assert result.total_time is first  # same cached float object, no recompute
        # Appending an iteration invalidates the cache.
        extra = simulate_job(BCCScheme(load=3), homogeneous_cluster, 12, 1, rng=rng)
        result.iterations.extend(extra.iterations)
        assert result.num_iterations == 5
        assert result.total_time == pytest.approx(first + extra.total_time)
        assert result.average_recovery_threshold == pytest.approx(
            np.mean([outcome.workers_heard for outcome in result.iterations])
        )

    def test_aggregates_invalidated_on_same_length_replacement(
        self, homogeneous_cluster, rng
    ):
        # Regression: the cache used to be keyed on len(iterations) alone, so
        # replacing an outcome at an unchanged length served stale totals.
        result = simulate_job(BCCScheme(load=3), homogeneous_cluster, 12, 4, rng=rng)
        stale_total = result.total_time
        replacement = result.iterations[0]
        bumped = type(replacement)(
            total_time=replacement.total_time + 100.0,
            computation_time=replacement.computation_time,
            communication_time=replacement.communication_time + 100.0,
            workers_heard=replacement.workers_heard,
            communication_load=replacement.communication_load,
            workers_finished_compute=replacement.workers_finished_compute,
            heard_workers=replacement.heard_workers,
        )
        result.iterations[0] = bumped
        assert result.num_iterations == 4
        assert result.total_time == pytest.approx(stale_total + 100.0)

    def test_aggregates_invalidated_on_every_mutation_kind(self, homogeneous_cluster, rng):
        result = simulate_job(BCCScheme(load=3), homogeneous_cluster, 12, 4, rng=rng)
        total_of_four = result.total_time
        removed = result.iterations.pop()
        assert result.total_time == pytest.approx(total_of_four - removed.total_time)
        result.iterations.append(removed)
        assert result.total_time == pytest.approx(total_of_four)
        result.iterations.clear()
        with pytest.raises(SimulationError):
            result.average_recovery_threshold
        assert result.total_time == 0.0

    def test_cache_survives_pickle_round_trip(self, homogeneous_cluster, rng):
        import pickle

        result = simulate_job(BCCScheme(load=3), homogeneous_cluster, 12, 4, rng=rng)
        expected = result.total_time  # populate the cache before pickling
        clone = pickle.loads(pickle.dumps(result))
        assert clone.total_time == pytest.approx(expected)
        clone.iterations.pop()
        assert clone.total_time == pytest.approx(
            sum(outcome.total_time for outcome in clone.iterations)
        )

    def test_plain_list_reassignment_disables_caching_safely(
        self, homogeneous_cluster, rng
    ):
        result = simulate_job(BCCScheme(load=3), homogeneous_cluster, 12, 4, rng=rng)
        _ = result.total_time
        result.iterations = list(result.iterations)[:2]
        assert result.total_time == pytest.approx(
            sum(outcome.total_time for outcome in result.iterations)
        )


class TestSemanticTrainingRun:
    @pytest.fixture
    def problem(self):
        config = LogisticDataConfig(num_examples=48, num_features=8)
        dataset, _ = make_paper_logistic_data(config, seed=0)
        return LogisticLoss(), dataset

    def test_training_matches_centralised_gd(self, problem):
        # With every scheme recovering the exact gradient, the distributed
        # trajectory must equal the centralised one for the same optimizer.
        model, dataset = problem
        cluster = ClusterSpec.homogeneous(12, DeterministicDelay(0.001))
        unit_spec = make_batches(dataset.num_examples, 4)  # 12 batches
        distributed = simulate_training_run(
            UncodedScheme(),
            cluster,
            model,
            dataset,
            NesterovAcceleratedGradient(0.5),
            num_iterations=15,
            rng=0,
            unit_spec=unit_spec,
        )
        centralised = train(
            model, dataset, NesterovAcceleratedGradient(0.5), num_iterations=15
        )
        np.testing.assert_allclose(
            distributed.training.weights, centralised.weights, atol=1e-8
        )
        np.testing.assert_allclose(
            distributed.training.losses, centralised.losses, atol=1e-8
        )

    def test_bcc_semantic_run_also_matches(self, problem, homogeneous_cluster):
        model, dataset = problem
        unit_spec = make_batches(dataset.num_examples, 4)  # 12 batches
        distributed = simulate_training_run(
            BCCScheme(load=3),
            homogeneous_cluster,
            model,
            dataset,
            NesterovAcceleratedGradient(0.5),
            num_iterations=10,
            rng=1,
            unit_spec=unit_spec,
        )
        centralised = train(
            model, dataset, NesterovAcceleratedGradient(0.5), num_iterations=10
        )
        np.testing.assert_allclose(
            distributed.training.weights, centralised.weights, atol=1e-8
        )

    def test_loss_decreases(self, problem, homogeneous_cluster):
        model, dataset = problem
        unit_spec = make_batches(dataset.num_examples, 4)
        result = simulate_training_run(
            BCCScheme(load=4),
            homogeneous_cluster,
            model,
            dataset,
            NesterovAcceleratedGradient(0.3),
            num_iterations=12,
            rng=2,
            unit_spec=unit_spec,
        )
        assert result.training.losses[-1] < result.training.losses[0]
        assert result.num_iterations == 12

    def test_example_granularity_run(self, problem, homogeneous_cluster):
        model, dataset = problem
        # Units are single examples (no unit_spec); use 12 workers over 48 units.
        result = simulate_training_run(
            UncodedScheme(),
            homogeneous_cluster,
            model,
            dataset,
            NesterovAcceleratedGradient(0.5),
            num_iterations=3,
            rng=3,
        )
        assert result.training.num_iterations == 3
