"""Compiled kernel backends vs the NumPy reference: bit-identical, always.

``repro.simulation.kernels`` promises that the ``kernels=`` knob can never
change a result — every backend (numba, the C extension) must reproduce the
NumPy reference bit for bit. This suite pins the promise at the job level
for **every registered scheme**, in **both master-link modes**, on
**stationary and dynamic clusters**, plus a Hypothesis property over random
job shapes.

Availability mirrors the soft-dependency contract: the numba column skips
where numba is not installed (tier-1 never requires it), the cext column
skips where no C toolchain exists — and the matrix-coverage test keeps the
scheme list honest as new schemes register.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dynamic import DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.schemes.registry import available_schemes, scheme_from_config
from repro.simulation.kernels import (
    available_kernel_backends,
    kernels_available,
)
from repro.simulation.vectorized import simulate_job_vectorized
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay

#: One representative configuration per registered scheme, with enough
#: redundancy to survive the dynamic scenario. Mirrors the engine
#: equivalence suites; the coverage test below keeps it exhaustive.
SCHEME_MATRIX = {
    "uncoded": ({"name": "uncoded"}, 24),
    "bcc": ({"name": "bcc", "load": 6}, 24),
    "randomized": ({"name": "randomized", "load": 8}, 24),
    "ignore-stragglers": ({"name": "ignore-stragglers", "wait_fraction": 0.6}, 24),
    "cyclic-repetition": ({"name": "cyclic-repetition", "load": 6}, 12),
    "reed-solomon": ({"name": "reed-solomon", "load": 6}, 12),
    "fractional-repetition": ({"name": "fractional-repetition", "load": 4}, 12),
    "generalized-bcc": ({"name": "generalized-bcc"}, 24),
    "load-balanced": ({"name": "load-balanced"}, 24),
}

HETEROGENEOUS = {"generalized-bcc", "load-balanced"}

COMPILED_BACKENDS = ("numba", "cext")


def require_backend(backend: str) -> None:
    if not kernels_available(backend):
        pytest.skip(f"kernel backend {backend!r} unavailable here")


def make_cluster(name: str) -> ClusterSpec:
    communication = LinearCommunicationModel(latency=0.05, seconds_per_unit=0.02)
    if name in HETEROGENEOUS:
        return ClusterSpec.paper_fig5_cluster(
            num_workers=12, num_fast=2, communication=communication
        )
    return ClusterSpec.homogeneous(
        12, ShiftedExponentialDelay(straggling=1.0, shift=0.01), communication
    )


def run_with_kernels(config, cluster, base, num_units, kernels, *, serialize):
    return simulate_job_vectorized(
        scheme_from_config(config, cluster=base),
        cluster,
        num_units,
        9,
        rng=123,
        serialize_master_link=serialize,
        kernels=kernels,
    )


def assert_parity(config, cluster, base, num_units, backend, *, serialize):
    reference = run_with_kernels(
        config, cluster, base, num_units, "numpy", serialize=serialize
    )
    compiled = run_with_kernels(
        config, cluster, base, num_units, backend, serialize=serialize
    )
    assert compiled.summary() == reference.summary()  # exact float equality
    assert list(compiled.iterations) == list(reference.iterations)


class TestKernelParityMatrix:
    def test_matrix_covers_every_registered_scheme(self):
        assert sorted(SCHEME_MATRIX) == available_schemes()

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    @pytest.mark.parametrize("serialize", [False, True])
    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_stationary_identical(self, name, serialize, backend):
        require_backend(backend)
        config, num_units = SCHEME_MATRIX[name]
        cluster = make_cluster(name)
        assert_parity(config, cluster, cluster, num_units, backend, serialize=serialize)

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    @pytest.mark.parametrize("serialize", [False, True])
    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_dynamic_identical(self, name, serialize, backend):
        # The absence-free Markov scenario every scheme can complete.
        require_backend(backend)
        config, num_units = SCHEME_MATRIX[name]
        base = make_cluster(name)
        dynamic = DynamicClusterSpec(
            base, dynamics={"name": "markov", "slowdown": 6.0, "p_slow": 0.2}
        )
        assert_parity(config, dynamic, base, num_units, backend, serialize=serialize)


#: The property below runs on whichever compiled backend this machine has;
#: with none, it skips — same contract as the matrix.
_COMPILED_HERE = tuple(
    name for name in available_kernel_backends() if name != "numpy"
)


@pytest.mark.skipif(
    not _COMPILED_HERE, reason="no compiled kernel backend available"
)
@settings(max_examples=20, deadline=None)
@given(
    scheme=st.sampled_from(["uncoded", "bcc", "cyclic-repetition", "randomized"]),
    num_workers=st.integers(min_value=4, max_value=24),
    num_iterations=st.integers(min_value=1, max_value=6),
    straggling=st.floats(min_value=0.1, max_value=4.0),
    serialize=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_jobs_identical(
    scheme, num_workers, num_iterations, straggling, serialize, seed
):
    """Property: compiled kernels == numpy on arbitrary job shapes."""
    if scheme in ("bcc", "randomized"):
        # Random placement needs ~2x expected coverage to be feasible.
        num_units = num_workers * 2
        config = {"name": scheme, "load": 2 * num_units // num_workers + 1}
    elif scheme == "cyclic-repetition":
        config = {"name": scheme, "load": max(2, num_workers // 4)}
        num_units = num_workers  # coded schemes need m = n
    else:
        config = {"name": scheme}
        num_units = num_workers * 2
    cluster = ClusterSpec.homogeneous(
        num_workers,
        ShiftedExponentialDelay(straggling=straggling, shift=0.01),
        LinearCommunicationModel(latency=0.05, seconds_per_unit=0.02),
    )

    def run(kernels):
        return simulate_job_vectorized(
            scheme_from_config(config, cluster=cluster),
            cluster,
            num_units,
            num_iterations,
            rng=seed,
            serialize_master_link=serialize,
            kernels=kernels,
        )

    reference = run("numpy")
    for backend in _COMPILED_HERE:
        compiled = run(backend)
        assert compiled.summary() == reference.summary()
        assert list(compiled.iterations) == list(reference.iterations)
