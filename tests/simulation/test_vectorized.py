"""Equivalence tests: the vectorized engine vs the per-iteration loop.

The acceptance bar is *bit-identical* results at a fixed seed — not
approximate agreement — for every registered scheme, both master-link modes,
deterministic and stochastic communication models, and the scalar fallbacks
(mixed/unsupported delay models, custom aggregators). ``IterationOutcome``
is a frozen dataclass of floats and ints, so ``==`` over the iteration lists
compares every metric exactly; the summaries are compared with plain dict
equality for the same reason.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError, SimulationError
from repro.schemes.base import (
    ExecutionPlan,
    MasterAggregator,
    sum_encoder,
)
from repro.schemes.bcc import BCCScheme
from repro.schemes.registry import available_schemes, scheme_from_config
from repro.schemes.uncoded import UncodedScheme
from repro.simulation.job import simulate_job
from repro.simulation.vectorized import (
    ENGINES,
    resolve_engine,
    simulate_job_vectorized,
)
from repro.stragglers.communication import (
    LinearCommunicationModel,
    ZeroCommunicationModel,
)
from repro.stragglers.models import (
    BimodalStragglerDelay,
    DeterministicDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TraceDelay,
)

# One representative configuration per registered scheme. ``m`` is the unit
# count; coded schemes need m = n, the heterogeneous schemes derive their
# loads from the cluster.
SCHEME_MATRIX = {
    "uncoded": ({"name": "uncoded"}, 24),
    "bcc": ({"name": "bcc", "load": 4}, 24),
    "randomized": ({"name": "randomized", "load": 4}, 24),
    "ignore-stragglers": ({"name": "ignore-stragglers", "wait_fraction": 0.75}, 24),
    "cyclic-repetition": ({"name": "cyclic-repetition", "load": 3}, 12),
    "reed-solomon": ({"name": "reed-solomon", "load": 3}, 12),
    "fractional-repetition": ({"name": "fractional-repetition", "load": 3}, 12),
    "generalized-bcc": ({"name": "generalized-bcc"}, 24),
    "load-balanced": ({"name": "load-balanced"}, 24),
}

HETEROGENEOUS = {"generalized-bcc", "load-balanced"}


def make_cluster(name: str) -> ClusterSpec:
    if name in HETEROGENEOUS:
        return ClusterSpec.paper_fig5_cluster(
            num_workers=12,
            num_fast=2,
            communication=LinearCommunicationModel(latency=0.05, seconds_per_unit=0.02),
        )
    return ClusterSpec.homogeneous(
        12,
        ShiftedExponentialDelay(straggling=1.0, shift=0.01),
        LinearCommunicationModel(latency=0.05, seconds_per_unit=0.02),
    )


def run_both(config, cluster, num_units, *, seed=123, num_iterations=9, **kwargs):
    loop = simulate_job(
        scheme_from_config(config, cluster=cluster),
        cluster,
        num_units,
        num_iterations,
        rng=seed,
        **kwargs,
    )
    vectorized = simulate_job_vectorized(
        scheme_from_config(config, cluster=cluster),
        cluster,
        num_units,
        num_iterations,
        rng=seed,
        **kwargs,
    )
    return loop, vectorized


def assert_identical(loop, vectorized):
    assert loop.summary() == vectorized.summary()  # exact float equality
    assert list(loop.iterations) == list(vectorized.iterations)


class TestSchemeEquivalence:
    def test_matrix_covers_every_registered_scheme(self):
        assert sorted(SCHEME_MATRIX) == available_schemes(), (
            "a newly registered scheme must be added to the engine "
            "equivalence matrix"
        )

    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_serialized_link_identical(self, name):
        config, num_units = SCHEME_MATRIX[name]
        loop, vectorized = run_both(config, make_cluster(name), num_units)
        assert_identical(loop, vectorized)

    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_parallel_link_identical(self, name):
        config, num_units = SCHEME_MATRIX[name]
        loop, vectorized = run_both(
            config, make_cluster(name), num_units, serialize_master_link=False
        )
        assert_identical(loop, vectorized)

    @pytest.mark.parametrize("name", ["bcc", "uncoded", "fractional-repetition"])
    def test_stochastic_communication_identical(self, name):
        # Jitter makes transfer draws consume randomness, forcing the
        # vectorized engine onto the per-iteration draw schedule.
        config, num_units = SCHEME_MATRIX[name]
        cluster = ClusterSpec.homogeneous(
            12,
            ShiftedExponentialDelay(straggling=2.0),
            LinearCommunicationModel(latency=0.01, seconds_per_unit=0.05, jitter=0.2),
        )
        loop, vectorized = run_both(config, cluster, num_units)
        assert_identical(loop, vectorized)
        loop, vectorized = run_both(
            config, cluster, num_units, serialize_master_link=False
        )
        assert_identical(loop, vectorized)

    def test_unit_size_scales_identically(self):
        loop, vectorized = run_both(
            {"name": "bcc", "load": 4}, make_cluster("bcc"), 24, unit_size=50
        )
        assert_identical(loop, vectorized)


class TestDelayModelPaths:
    def test_deterministic_delays_and_ties(self):
        # Equal compute times everywhere: stresses stable tie-breaking in
        # both the completion sort and the serialized-link recurrence.
        cluster = ClusterSpec.homogeneous(
            8, DeterministicDelay(1.0), LinearCommunicationModel(seconds_per_unit=0.5)
        )
        loop, vectorized = run_both({"name": "uncoded"}, cluster, 16)
        assert_identical(loop, vectorized)

    def test_pareto_delays_identical(self):
        cluster = ClusterSpec.homogeneous(
            10, ParetoDelay(alpha=2.0, scale=0.5), ZeroCommunicationModel()
        )
        loop, vectorized = run_both({"name": "bcc", "load": 5}, cluster, 20)
        assert_identical(loop, vectorized)

    def test_trace_delays_identical(self):
        cluster = ClusterSpec.homogeneous(
            6, TraceDelay([0.1, 0.4, 0.9, 1.5]), ZeroCommunicationModel()
        )
        loop, vectorized = run_both({"name": "uncoded"}, cluster, 12)
        assert_identical(loop, vectorized)

    def test_bimodal_takes_scalar_grid_fallback_identically(self):
        # Bimodal interleaves two RNG calls per draw, so it has no batched
        # grid; the generic fallback must still match the loop exactly.
        cluster = ClusterSpec.homogeneous(
            6, BimodalStragglerDelay(), ZeroCommunicationModel()
        )
        loop, vectorized = run_both({"name": "bcc", "load": 4}, cluster, 12)
        assert_identical(loop, vectorized)

    def test_mixed_trace_delays_take_scalar_grid_fallback_identically(self):
        # Different per-worker traces defeat the shared-population batched
        # `choice`, so the engine must fall back to the generic scalar grid
        # — and still match the loop bit for bit, in both link modes and
        # with transfer draws interleaving (stochastic communication).
        from repro.cluster.spec import WorkerSpec

        traces = [
            [0.1, 0.4, 0.9],
            [0.2, 0.3, 0.5, 1.5],
            [0.05, 2.0],
            [1.0, 1.1, 1.2],
            [0.4, 0.4, 0.8],
            [0.6, 0.2],
        ]
        cluster = ClusterSpec(
            workers=tuple(
                WorkerSpec(compute=TraceDelay(trace), name=f"worker-{i}")
                for i, trace in enumerate(traces)
            ),
            communication=LinearCommunicationModel(
                latency=0.05, seconds_per_unit=0.02, jitter=0.01
            ),
        )
        for serialize in (True, False):
            loop, vectorized = run_both(
                {"name": "bcc", "load": 4},
                cluster,
                12,
                serialize_master_link=serialize,
            )
            assert_identical(loop, vectorized)

    def test_equal_but_distinct_trace_arrays_keep_the_native_grid(self):
        # Same per-example times in different array objects: the engine may
        # batch (np.array_equal check) and must still match the loop.
        from repro.cluster.spec import WorkerSpec

        cluster = ClusterSpec(
            workers=tuple(
                WorkerSpec(compute=TraceDelay([0.1, 0.4, 0.9, 1.5]), name=f"w{i}")
                for i in range(6)
            ),
            communication=ZeroCommunicationModel(),
        )
        loop, vectorized = run_both({"name": "uncoded"}, cluster, 12)
        assert_identical(loop, vectorized)

    @pytest.mark.parametrize(
        "model",
        [
            TraceDelay([0.1, 0.4, 0.9, 1.5, 2.2]),
            BimodalStragglerDelay(),
            ParetoDelay(alpha=2.5, scale=0.3),
        ],
        ids=lambda model: type(model).__name__,
    )
    def test_sample_batch_fallback_equals_sized_draws(self, model):
        # Models without a native sample_batch inherit the base fallback,
        # whose contract is equality with the sized draw path — the stream
        # guarantee the engine's communication batching builds on.
        batch = model.sample_batch(3, np.random.default_rng(11), size=7)
        sized = model.sample(3, np.random.default_rng(11), size=7)
        np.testing.assert_array_equal(batch, sized)

    def test_trace_grid_native_path_equals_generic_fallback(self):
        from repro.stragglers.base import DelayModel

        model = TraceDelay([0.1, 0.4, 0.9, 1.5, 2.2])
        models, loads = [model] * 3, [2, 3, 4]
        native = TraceDelay.sample_grid(models, loads, np.random.default_rng(0), 5)
        generic = DelayModel.sample_grid(models, loads, np.random.default_rng(0), 5)
        np.testing.assert_array_equal(native, generic)

    def test_mixed_model_cluster_identical(self):
        workers = ClusterSpec.homogeneous(3, ShiftedExponentialDelay(1.0)).workers
        from repro.cluster.spec import WorkerSpec

        mixed = ClusterSpec(
            workers=workers
            + (
                WorkerSpec(compute=ParetoDelay(alpha=3.0), name="pareto"),
                WorkerSpec(compute=DeterministicDelay(0.7), name="det"),
                WorkerSpec(compute=BimodalStragglerDelay(), name="bimodal"),
            ),
            communication=LinearCommunicationModel(seconds_per_unit=0.1),
        )
        loop, vectorized = run_both({"name": "uncoded"}, mixed, 12)
        assert_identical(loop, vectorized)


class TestSubclassedModelsStayExact:
    """Overriding sample() must force the scalar fallback, not a wrong batch."""

    def test_delay_subclass_overriding_sample_matches_loop(self):
        class DoubledDelay(ShiftedExponentialDelay):
            def sample(self, load, rng=None, size=None):
                return 2.0 * super().sample(load, rng=rng, size=size)

        from repro.cluster.spec import WorkerSpec

        cluster = ClusterSpec(
            workers=(
                WorkerSpec(compute=DoubledDelay(1.0)),
                WorkerSpec(compute=ShiftedExponentialDelay(1.0)),
                WorkerSpec(compute=DoubledDelay(2.0)),
                WorkerSpec(compute=ShiftedExponentialDelay(2.0)),
            ),
            communication=LinearCommunicationModel(seconds_per_unit=0.1),
        )
        loop, vectorized = run_both({"name": "uncoded"}, cluster, 8)
        assert_identical(loop, vectorized)

    def test_communication_subclass_overriding_sample_matches_loop(self):
        class NoisyLink(LinearCommunicationModel):
            def sample(self, message_size, rng=None, size=None):
                from repro.utils.rng import as_generator

                base = super().sample(message_size, rng=None, size=size)
                return base + as_generator(rng).exponential(0.5, size=size)

        noisy = NoisyLink(latency=0.1, seconds_per_unit=0.2)  # jitter == 0
        assert not noisy.is_deterministic
        cluster = ClusterSpec.homogeneous(
            8, ShiftedExponentialDelay(1.0), noisy
        )
        loop, vectorized = run_both({"name": "bcc", "load": 4}, cluster, 16)
        assert_identical(loop, vectorized)


class TestFallbackAndEdgeCases:
    def test_custom_aggregator_uses_scalar_fallback_identically(self):
        # A stopping rule the kernel registry has never seen: wait for the
        # first even-indexed worker. Both engines must agree through the
        # aggregator-driven fallback.
        class FirstEvenAggregator(MasterAggregator):
            def __init__(self):
                super().__init__()
                self._done = False

            def _accept(self, worker, message):
                if worker % 2 == 0:
                    self._done = True
                    return True
                return False

            def is_complete(self):
                return self._done

            def decode(self):  # pragma: no cover - timing-only tests
                raise NotImplementedError

        base = UncodedScheme().build_plan(12, 12)
        plan = ExecutionPlan(
            scheme_name="first-even",
            num_units=12,
            unit_assignment=base.unit_assignment,
            message_sizes=base.message_sizes,
            aggregator_factory=FirstEvenAggregator,
            encoder=sum_encoder,
        )
        cluster = make_cluster("uncoded")
        loop = simulate_job(plan, cluster, 12, 9, rng=7)
        vectorized = simulate_job_vectorized(plan, cluster, 12, 9, rng=7)
        assert_identical(loop, vectorized)

    def test_idle_workers_identical(self):
        # Explicit zero loads: idle workers never draw, never arrive.
        cluster = make_cluster("load-balanced")
        config = {"name": "load-balanced", "loads": [6, 0, 6, 0, 6, 0, 6, 0, 0, 0, 0, 0]}
        loop, vectorized = run_both(config, cluster, 24)
        assert_identical(loop, vectorized)
        assert set(loop.iterations[0].heard_workers) == {0, 2, 4, 6}

    def test_single_worker_single_iteration(self):
        cluster = ClusterSpec.homogeneous(1, ShiftedExponentialDelay(1.0))
        loop, vectorized = run_both(
            {"name": "uncoded"}, cluster, 5, num_iterations=1
        )
        assert_identical(loop, vectorized)

    def test_infeasible_plan_raises_like_the_loop(self):
        scheme = BCCScheme(load=5)
        missing = None
        for seed in range(200):
            plan = scheme.build_plan(20, 4, rng=seed)
            if not plan.can_ever_complete():
                missing = plan
                break
        assert missing is not None, "expected to find an infeasible placement"
        cluster = ClusterSpec.homogeneous(4, DeterministicDelay(1.0))
        with pytest.raises(SimulationError):
            simulate_job(missing, cluster, 20, 2, rng=0)
        with pytest.raises(SimulationError):
            simulate_job_vectorized(missing, cluster, 20, 2, rng=0)

    def test_cluster_size_mismatch_raises(self):
        plan = UncodedScheme().build_plan(10, 5)
        cluster = ClusterSpec.homogeneous(4, DeterministicDelay(1.0))
        with pytest.raises(SimulationError):
            simulate_job_vectorized(plan, cluster, 10, 2, rng=0)


class TestEngineKnob:
    def test_simulate_job_engine_dispatch(self):
        cluster = make_cluster("bcc")
        reference = simulate_job_vectorized(BCCScheme(4), cluster, 24, 6, rng=3)
        via_knob = simulate_job(BCCScheme(4), cluster, 24, 6, rng=3, engine="vectorized")
        assert_identical(reference, via_knob)

    def test_engine_names(self):
        assert set(ENGINES) == {"loop", "vectorized", "auto"}
        with pytest.raises(ConfigurationError):
            resolve_engine("warp", num_iterations=1, num_workers=1)
        with pytest.raises(ConfigurationError):
            simulate_job(
                BCCScheme(4), make_cluster("bcc"), 24, 2, rng=0, engine="warp"
            )

    def test_auto_picks_by_job_size(self):
        assert resolve_engine("auto", num_iterations=1, num_workers=4) == "loop"
        assert (
            resolve_engine("auto", num_iterations=1000, num_workers=1000)
            == "vectorized"
        )
        assert resolve_engine("loop", num_iterations=10**6, num_workers=10**6) == "loop"
        assert resolve_engine("vectorized", num_iterations=1, num_workers=1) == (
            "vectorized"
        )

    def test_auto_threshold_keeps_tiny_jobs_on_the_loop(self):
        # Below the calibrated crossover (iterations x workers x trials)
        # the loop engine's lower setup cost wins — tiny jobs must not pay
        # vectorized setup.
        assert resolve_engine("auto", num_iterations=1, num_workers=1) == "loop"
        assert resolve_engine("auto", num_iterations=3, num_workers=5) == "loop"
        assert resolve_engine("auto", num_iterations=1, num_workers=15) == "loop"
        assert resolve_engine("auto", num_iterations=2, num_workers=8) == "vectorized"

    def test_auto_threshold_is_trial_aware(self):
        # A trial-batched cell amortises vectorized setup over every trial,
        # so auto decides on the full trials x iterations x workers volume.
        assert (
            resolve_engine("auto", num_iterations=1, num_workers=15, num_trials=1)
            == "loop"
        )
        assert (
            resolve_engine("auto", num_iterations=1, num_workers=15, num_trials=2)
            == "vectorized"
        )
        assert (
            resolve_engine("auto", num_iterations=1, num_workers=4, num_trials=4)
            == "vectorized"
        )

    def test_auto_equals_both_engines_anyway(self):
        cluster = make_cluster("uncoded")
        auto = simulate_job(UncodedScheme(), cluster, 24, 40, rng=5, engine="auto")
        loop = simulate_job(UncodedScheme(), cluster, 24, 40, rng=5, engine="loop")
        assert_identical(loop, auto)
