"""Loop vs vectorized engine equivalence on dynamic clusters.

The acceptance bar mirrors the stationary equivalence suite: *bit-identical*
results at a fixed seed for every registered scheme on a
:class:`~repro.cluster.dynamic.DynamicClusterSpec` scenario combining churn
events with Markov-modulated delays, in both master-link modes, with
deterministic and stochastic communication — and identical *raises* when
churn removes the last holders of a data unit.
"""

import numpy as np
import pytest

from repro.cluster.dynamic import ChurnEvent, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec, WorkerSpec
from repro.exceptions import SimulationError
from repro.schemes.registry import available_schemes, scheme_from_config
from repro.simulation.job import simulate_job, simulate_training_run
from repro.simulation.vectorized import simulate_job_vectorized
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import (
    BimodalStragglerDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
)

# One representative configuration per registered scheme, with enough
# redundancy that the churn scenario below keeps every unit covered.
SCHEME_MATRIX = {
    "uncoded": ({"name": "uncoded"}, 24),
    "bcc": ({"name": "bcc", "load": 6}, 24),
    "randomized": ({"name": "randomized", "load": 8}, 24),
    "ignore-stragglers": ({"name": "ignore-stragglers", "wait_fraction": 0.6}, 24),
    "cyclic-repetition": ({"name": "cyclic-repetition", "load": 6}, 12),
    "reed-solomon": ({"name": "reed-solomon", "load": 6}, 12),
    "fractional-repetition": ({"name": "fractional-repetition", "load": 4}, 12),
    "generalized-bcc": ({"name": "generalized-bcc"}, 24),
    "load-balanced": ({"name": "load-balanced"}, 24),
}

HETEROGENEOUS = {"generalized-bcc", "load-balanced"}

#: Schemes with zero redundancy: every worker is required every iteration, so
#: an absence scenario cannot complete — the equivalence bar for them is that
#: both engines *raise* identically (and complete identically under the
#: absence-free Markov scenario below).
REQUIRES_ALL_WORKERS = {"uncoded", "load-balanced"}

#: The acceptance scenario: a preemption window, a permanent leave with a
#: later elastic rejoin, plus Markov-modulated slow/fast regimes everywhere.
CHURN_EVENTS = (
    ChurnEvent("preempt", 3, 2, 3),
    ChurnEvent("leave", 7, 5),
    ChurnEvent("join", 7, 8),
)


def make_base(name: str, *, jitter: float = 0.0) -> ClusterSpec:
    communication = LinearCommunicationModel(
        latency=0.05, seconds_per_unit=0.02, jitter=jitter
    )
    if name in HETEROGENEOUS:
        return ClusterSpec.paper_fig5_cluster(
            num_workers=12, num_fast=2, communication=communication
        )
    return ClusterSpec.homogeneous(
        12, ShiftedExponentialDelay(straggling=1.0, shift=0.01), communication
    )


def make_dynamic(base: ClusterSpec) -> DynamicClusterSpec:
    return DynamicClusterSpec(
        base,
        dynamics={"name": "markov", "slowdown": 6.0, "p_slow": 0.2},
        events=CHURN_EVENTS,
    )


def run_both(config, cluster, base, num_units, *, seed=123, num_iterations=9, **kwargs):
    results = []
    for engine in (simulate_job, simulate_job_vectorized):
        try:
            job = engine(
                scheme_from_config(config, cluster=base),
                cluster,
                num_units,
                num_iterations,
                rng=seed,
                **kwargs,
            )
            results.append(("completed", job))
        except SimulationError:
            results.append(("raised", None))
    return results


def assert_identical(results):
    (loop_status, loop), (vec_status, vectorized) = results
    assert loop_status == vec_status == "completed"
    assert loop.summary() == vectorized.summary()  # exact float equality
    assert list(loop.iterations) == list(vectorized.iterations)


def assert_equivalent_under_absence(name, results):
    """Bit-identity for redundant schemes; identical raises for the rest."""
    if name in REQUIRES_ALL_WORKERS:
        assert [status for status, _ in results] == ["raised", "raised"]
    else:
        assert_identical(results)


class TestDynamicSchemeEquivalence:
    def test_matrix_covers_every_registered_scheme(self):
        assert sorted(SCHEME_MATRIX) == available_schemes()

    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_markov_modulated_identical(self, name):
        # The absence-free dynamic scenario every scheme can complete.
        config, num_units = SCHEME_MATRIX[name]
        base = make_base(name)
        cluster = DynamicClusterSpec(
            base, dynamics={"name": "markov", "slowdown": 6.0, "p_slow": 0.2}
        )
        for serialize in (True, False):
            assert_identical(
                run_both(config, cluster, base, num_units,
                         serialize_master_link=serialize)
            )

    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_serialized_link_identical_under_churn(self, name):
        config, num_units = SCHEME_MATRIX[name]
        base = make_base(name)
        assert_equivalent_under_absence(
            name,
            run_both(config, make_dynamic(base), base, num_units,
                     serialize_master_link=True),
        )

    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_parallel_link_identical_under_churn(self, name):
        config, num_units = SCHEME_MATRIX[name]
        base = make_base(name)
        assert_equivalent_under_absence(
            name,
            run_both(config, make_dynamic(base), base, num_units,
                     serialize_master_link=False),
        )

    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_stochastic_communication_identical_under_churn(self, name):
        config, num_units = SCHEME_MATRIX[name]
        base = make_base(name, jitter=0.01)
        assert_equivalent_under_absence(
            name,
            run_both(config, make_dynamic(base), base, num_units,
                     serialize_master_link=True),
        )


class TestDynamicRegimes:
    def test_drifting_delays_identical(self):
        base = make_base("bcc")
        cluster = DynamicClusterSpec(base, dynamics={"name": "drift", "final_factor": 4.0})
        assert_identical(run_both({"name": "bcc", "load": 4}, cluster, base, 24))

    def test_random_preemption_identical_or_raises_identically(self):
        base = make_base("bcc", jitter=0.005)
        cluster = DynamicClusterSpec(
            base,
            dynamics={"name": "preempt", "preempt_probability": 0.15,
                      "recovery_iterations": 2},
        )
        for seed in (0, 1, 2, 3):
            results = run_both({"name": "bcc", "load": 6}, cluster, base, 24,
                               seed=seed)
            assert results[0][0] == results[1][0]
            if results[0][0] == "completed":
                assert_identical(results)

    def test_initially_absent_scale_out_identical(self):
        base = make_base("bcc")
        cluster = DynamicClusterSpec(
            base,
            initially_absent=[10, 11],
            events=[ChurnEvent("join", 10, 3), ChurnEvent("join", 11, 6)],
        )
        assert_identical(run_both({"name": "bcc", "load": 6}, cluster, base, 24))

    def test_mixed_base_models_take_scalar_fallback_identically(self):
        communication = LinearCommunicationModel(latency=0.05, seconds_per_unit=0.02)
        workers = [
            ShiftedExponentialDelay(1.0, 0.01),
            ParetoDelay(alpha=2.0, scale=0.05),
            BimodalStragglerDelay(seconds_per_example=0.05),
        ] * 4
        base = ClusterSpec(
            workers=tuple(
                WorkerSpec(compute=model, name=f"worker-{i}")
                for i, model in enumerate(workers)
            ),
            communication=communication,
        )
        cluster = DynamicClusterSpec(
            base,
            dynamics={"name": "markov", "slowdown": 3.0, "p_slow": 0.3},
            events=[ChurnEvent("preempt", 0, 2, 2)],
        )
        assert_identical(run_both({"name": "bcc", "load": 6}, cluster, base, 24))

    def test_lost_coverage_raises_in_both_engines(self):
        base = make_base("uncoded")
        cluster = DynamicClusterSpec(base, events=[ChurnEvent("leave", 0, 2)])
        messages = []
        for engine in (simulate_job, simulate_job_vectorized):
            with pytest.raises(SimulationError) as excinfo:
                engine(
                    scheme_from_config({"name": "uncoded"}),
                    cluster,
                    24,
                    9,
                    rng=123,
                )
            messages.append(str(excinfo.value))
        # Identical, and naming the actual cause (vacancy), not a placement
        # problem — "all workers reported" would be wrong here.
        assert messages[0] == messages[1]
        assert "coverage lost to churn/preemption" in messages[0]
        assert "infeasible placement" not in messages[0]

    def test_worker_count_mismatch_raises(self):
        base = make_base("bcc")
        other = make_base("bcc")
        cluster = DynamicClusterSpec(base, dynamics="drift")
        plan = scheme_from_config({"name": "bcc", "load": 4}).build_feasible_plan(
            24, 10, np.random.default_rng(0)
        )
        with pytest.raises(SimulationError, match="10 workers"):
            simulate_job_vectorized(plan, cluster, 24, 3, rng=0)
        assert other.num_workers == cluster.num_workers


class TestDynamicDispatchAndTraining:
    def test_engine_knob_dispatches_identically(self):
        base = make_base("bcc")
        cluster = make_dynamic(base)
        results = [
            simulate_job(
                scheme_from_config({"name": "bcc", "load": 6}, cluster=base),
                cluster,
                24,
                9,
                rng=77,
                engine=engine,
            )
            for engine in ("loop", "vectorized", "auto")
        ]
        assert results[0].summary() == results[1].summary() == results[2].summary()

    def test_training_run_timing_matches_timing_only(self, small_logistic_dataset):
        from repro.gradients.logistic import LogisticLoss
        from repro.optim.gradient_descent import GradientDescent

        dataset, _ = small_logistic_dataset
        base = make_base("bcc")
        cluster = DynamicClusterSpec(
            base, dynamics={"name": "markov", "slowdown": 4.0, "p_slow": 0.25}
        )
        timing = simulate_job(
            scheme_from_config({"name": "bcc", "load": 15}),
            cluster,
            dataset.num_examples,
            5,
            rng=42,
        )
        training = simulate_training_run(
            scheme_from_config({"name": "bcc", "load": 15}),
            cluster,
            LogisticLoss(),
            dataset,
            GradientDescent(0.1),
            num_iterations=5,
            rng=42,
        )
        assert list(timing.iterations) == list(training.iterations)
        assert training.training is not None
        assert len(training.training.history) == 5
