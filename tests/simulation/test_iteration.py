"""Tests for the single-iteration timing simulator."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.exceptions import SimulationError
from repro.schemes.bcc import BCCScheme
from repro.schemes.uncoded import UncodedScheme
from repro.simulation.iteration import simulate_iteration
from repro.stragglers.communication import LinearCommunicationModel, ZeroCommunicationModel
from repro.stragglers.models import DeterministicDelay, ExponentialDelay


class TestDeterministicAccounting:
    """With deterministic delays every metric can be checked exactly."""

    def test_uncoded_times(self):
        # 4 workers, 8 units, 2 units each, 1 s per example, free comm:
        # every worker finishes at t = 2 and the master waits for all.
        cluster = ClusterSpec.homogeneous(
            4, DeterministicDelay(1.0), ZeroCommunicationModel()
        )
        plan = UncodedScheme().build_plan(8, 4)
        outcome = simulate_iteration(plan, cluster, rng=0)
        assert outcome.total_time == pytest.approx(2.0)
        assert outcome.computation_time == pytest.approx(2.0)
        assert outcome.communication_time == pytest.approx(0.0)
        assert outcome.workers_heard == 4
        assert outcome.communication_load == pytest.approx(4.0)

    def test_unit_size_scales_computation(self):
        cluster = ClusterSpec.homogeneous(
            2, DeterministicDelay(1.0), ZeroCommunicationModel()
        )
        plan = UncodedScheme().build_plan(2, 2)
        outcome = simulate_iteration(plan, cluster, rng=0, unit_size=50)
        assert outcome.total_time == pytest.approx(50.0)

    def test_serialized_link_accumulates_transfers(self):
        # Deterministic compute 1 s, deterministic 0.5 s per message, 3
        # workers: with a serialized link the last arrival is 1 + 3 * 0.5.
        cluster = ClusterSpec.homogeneous(
            3,
            DeterministicDelay(1.0),
            LinearCommunicationModel(seconds_per_unit=0.5),
        )
        plan = UncodedScheme().build_plan(3, 3)
        outcome = simulate_iteration(plan, cluster, rng=0, serialize_master_link=True)
        assert outcome.total_time == pytest.approx(1.0 + 3 * 0.5)
        assert outcome.communication_time == pytest.approx(1.5)

    def test_parallel_link_overlaps_transfers(self):
        cluster = ClusterSpec.homogeneous(
            3,
            DeterministicDelay(1.0),
            LinearCommunicationModel(seconds_per_unit=0.5),
        )
        plan = UncodedScheme().build_plan(3, 3)
        outcome = simulate_iteration(plan, cluster, rng=0, serialize_master_link=False)
        assert outcome.total_time == pytest.approx(1.5)


class TestStoppingBehaviour:
    def test_bcc_hears_fewer_workers_than_uncoded(self, exponential_cluster, rng):
        num_units, load = 20, 5
        bcc_plan = BCCScheme(load).build_feasible_plan(num_units, 20, rng=rng)
        uncoded_plan = UncodedScheme().build_plan(num_units, 20)
        bcc_heard = [
            simulate_iteration(bcc_plan, exponential_cluster, rng=rng).workers_heard
            for _ in range(50)
        ]
        uncoded_heard = [
            simulate_iteration(uncoded_plan, exponential_cluster, rng=rng).workers_heard
            for _ in range(50)
        ]
        assert np.mean(bcc_heard) < np.mean(uncoded_heard)
        assert all(count == 20 for count in uncoded_heard)

    def test_heard_workers_listed_in_arrival_order(self, exponential_cluster, rng):
        plan = UncodedScheme().build_plan(20, 20)
        outcome = simulate_iteration(plan, exponential_cluster, rng=rng)
        assert len(outcome.heard_workers) == outcome.workers_heard
        assert set(outcome.heard_workers) == set(range(20))

    def test_infeasible_plan_raises(self, rng):
        # Build a BCC plan whose random choices miss a batch, then simulate.
        scheme = BCCScheme(load=5)
        missing = None
        for seed in range(200):
            plan = scheme.build_plan(20, 4, rng=seed)
            if not plan.can_ever_complete():
                missing = plan
                break
        assert missing is not None, "expected to find an infeasible placement"
        cluster = ClusterSpec.homogeneous(4, DeterministicDelay(1.0))
        with pytest.raises(SimulationError):
            simulate_iteration(missing, cluster, rng=0)

    def test_cluster_size_mismatch_raises(self, rng):
        plan = UncodedScheme().build_plan(10, 5)
        cluster = ClusterSpec.homogeneous(4, DeterministicDelay(1.0))
        with pytest.raises(SimulationError):
            simulate_iteration(plan, cluster, rng=rng)


class TestMetricsConsistency:
    def test_times_add_up(self, homogeneous_cluster, rng):
        plan = BCCScheme(load=3).build_feasible_plan(12, 12, rng=rng)
        for _ in range(20):
            outcome = simulate_iteration(plan, homogeneous_cluster, rng=rng)
            assert outcome.total_time >= outcome.computation_time - 1e-12
            assert outcome.communication_time == pytest.approx(
                outcome.total_time - outcome.computation_time
            )
            assert outcome.workers_finished_compute >= outcome.workers_heard - 1

    def test_communication_load_counts_message_sizes(self, homogeneous_cluster, rng):
        from repro.schemes.randomized import SimpleRandomizedScheme

        plan = SimpleRandomizedScheme(load=4).build_feasible_plan(12, 12, rng=rng)
        outcome = simulate_iteration(plan, homogeneous_cluster, rng=rng)
        assert outcome.communication_load == pytest.approx(4.0 * outcome.workers_heard)
