"""Trial-batched engine: bit-identity with solo runs, across every scheme.

The contract under test is :func:`simulate_job_batch`'s (documented in the
:mod:`repro.simulation.vectorized` module docstring): the plan is resolved
once from ``seeds[0]``'s generator and shared, after which

* trial 0 is bit-identical to a solo vectorized run of the *scheme* at
  ``seeds[0]``, and
* every trial ``t`` is bit-identical to a solo vectorized run of the shared
  *plan* at ``seeds[t]``

— for all nine registered schemes, both master-link modes, deterministic and
stochastic communication, stationary and dynamic clusters. Since the
loop==vectorized equivalence suite already pins the solo engines together,
this transitively ties the batch to the loop engine as well.
"""

import numpy as np
import pytest

from repro.api import JobSpec, TimingSimBackend
from repro.cluster.dynamic import ChurnEvent, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.schemes.registry import scheme_from_config
from repro.simulation import vectorized
from repro.simulation.vectorized import simulate_job_batch, simulate_job_vectorized
from repro.stragglers.base import DelayModel
from repro.stragglers.communication import (
    LinearCommunicationModel,
    ZeroCommunicationModel,
)
from repro.stragglers.models import (
    DeterministicDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
)

NUM_WORKERS = 12
TRIALS = 4
ITERATIONS = 3

#: (scheme config, num_units) for every registered scheme at n=12.
SCHEME_CASES = {
    "uncoded": ({"name": "uncoded"}, 24),
    "bcc": ({"name": "bcc", "load": 6}, 24),
    "randomized": ({"name": "randomized", "load": 8}, 24),
    "ignore-stragglers": ({"name": "ignore-stragglers", "wait_fraction": 0.75}, 24),
    "cyclic-repetition": ({"name": "cyclic-repetition", "load": 3}, NUM_WORKERS),
    "reed-solomon": ({"name": "reed-solomon", "load": 3}, NUM_WORKERS),
    "fractional-repetition": (
        {"name": "fractional-repetition", "load": 3},
        NUM_WORKERS,
    ),
    "generalized-bcc": ({"name": "generalized-bcc"}, 24),
    "load-balanced": ({"name": "load-balanced"}, 24),
}

HETEROGENEOUS = ("generalized-bcc", "load-balanced")


def make_cluster(name: str, communication=None) -> ClusterSpec:
    """A cluster the scheme can plan against (heterogeneous where needed)."""
    if communication is None:
        communication = LinearCommunicationModel(latency=0.01, seconds_per_unit=0.02)
    if name in HETEROGENEOUS:
        rng = np.random.default_rng(3)
        return ClusterSpec.shifted_exponential(
            rng.uniform(0.5, 4.0, NUM_WORKERS),
            rng.uniform(0.1, 0.4, NUM_WORKERS),
            communication=communication,
        )
    return ClusterSpec.homogeneous(
        NUM_WORKERS, ShiftedExponentialDelay(straggling=1.5, shift=0.1), communication
    )


def assert_batch_matches_solo(scheme, cluster, num_units, *, serialize, seeds=None):
    """Assert the documented batch==solo identity for one configuration."""
    if seeds is None:
        seeds = np.random.SeedSequence(42).spawn(TRIALS)
    batch = simulate_job_batch(
        scheme,
        cluster,
        num_units,
        ITERATIONS,
        seeds,
        serialize_master_link=serialize,
    )
    assert len(batch) == len(seeds)
    # Re-derive the shared plan exactly as the batch does: from seeds[0].
    generator = np.random.default_rng(seeds[0])
    plan = scheme.build_feasible_plan(num_units, cluster.num_workers, generator)
    for trial, seed in enumerate(seeds):
        rng = generator if trial == 0 else np.random.default_rng(seed)
        solo = simulate_job_vectorized(
            plan,
            cluster,
            num_units,
            ITERATIONS,
            rng,
            serialize_master_link=serialize,
        )
        assert list(batch[trial].iterations) == list(solo.iterations), (
            f"trial {trial} diverged from its solo run"
        )
        assert batch[trial].summary() == solo.summary()


@pytest.mark.parametrize("serialize", [True, False], ids=["serialized", "parallel"])
@pytest.mark.parametrize("name", sorted(SCHEME_CASES))
class TestStationaryBitIdentity:
    def test_every_trial_matches_its_solo_run(self, name, serialize):
        config, num_units = SCHEME_CASES[name]
        cluster = make_cluster(name)
        scheme = scheme_from_config(config, cluster=cluster)
        assert_batch_matches_solo(
            scheme, cluster, num_units, serialize=serialize
        )


@pytest.mark.parametrize("serialize", [True, False], ids=["serialized", "parallel"])
@pytest.mark.parametrize("name", sorted(SCHEME_CASES))
class TestDynamicBitIdentity:
    def test_every_trial_matches_its_solo_run(self, name, serialize):
        config, num_units = SCHEME_CASES[name]
        base = make_cluster(name)
        cluster = DynamicClusterSpec(
            base, dynamics={"name": "markov", "slowdown": 4.0, "p_slow": 0.2}
        )
        scheme = scheme_from_config(config, cluster=base)
        assert_batch_matches_solo(
            scheme, cluster, num_units, serialize=serialize
        )


class TestDrawSchedules:
    def test_stochastic_communication_matches_solo(self):
        comm = LinearCommunicationModel(latency=0.01, seconds_per_unit=0.02, jitter=0.05)
        cluster = make_cluster("bcc", comm)
        scheme = scheme_from_config({"name": "bcc", "load": 6}, cluster=cluster)
        assert_batch_matches_solo(scheme, cluster, 24, serialize=True)

    def test_zero_communication_matches_solo(self):
        cluster = make_cluster("uncoded", ZeroCommunicationModel())
        scheme = scheme_from_config({"name": "uncoded"}, cluster=cluster)
        assert_batch_matches_solo(scheme, cluster, 24, serialize=True)

    def test_mixed_model_cluster_takes_the_generic_path(self):
        from repro.cluster.spec import WorkerSpec

        models = [
            ShiftedExponentialDelay(1.0, 0.1) if i % 2 else ParetoDelay(2.5, 0.05)
            for i in range(NUM_WORKERS)
        ]
        cluster = ClusterSpec(
            workers=tuple(
                WorkerSpec(compute=model, name=f"worker-{i}")
                for i, model in enumerate(models)
            ),
            communication=LinearCommunicationModel(latency=0.01, seconds_per_unit=0.02),
        )
        scheme = scheme_from_config({"name": "bcc", "load": 6}, cluster=cluster)
        assert_batch_matches_solo(scheme, cluster, 24, serialize=False)

    def test_churn_events_match_solo(self):
        base = make_cluster("cyclic-repetition")
        cluster = DynamicClusterSpec(
            base,
            dynamics={"name": "drift", "final_factor": 2.0},
            events=(ChurnEvent("preempt", worker=1, iteration=1, recovery=1),),
        )
        scheme = scheme_from_config(
            {"name": "cyclic-repetition", "load": 3}, cluster=base
        )
        assert_batch_matches_solo(scheme, cluster, NUM_WORKERS, serialize=True)

    def test_trial_chunking_is_invisible(self, monkeypatch):
        cluster = make_cluster("bcc")
        scheme = scheme_from_config({"name": "bcc", "load": 6}, cluster=cluster)
        seeds = np.random.SeedSequence(5).spawn(7)
        reference = simulate_job_batch(scheme, cluster, 24, ITERATIONS, seeds)
        # Force ~1 trial per chunk: results must not move by a bit.
        monkeypatch.setattr(vectorized, "_BATCH_CELL_BUDGET", 1)
        chunked = simulate_job_batch(scheme, cluster, 24, ITERATIONS, seeds)
        for a, b in zip(reference, chunked):
            assert list(a.iterations) == list(b.iterations)

    def test_empty_seed_list_is_a_configuration_error(self):
        cluster = make_cluster("uncoded")
        scheme = scheme_from_config({"name": "uncoded"}, cluster=cluster)
        with pytest.raises(ConfigurationError, match="at least one trial"):
            simulate_job_batch(scheme, cluster, 24, ITERATIONS, [])


class TestSampleTrialsContracts:
    """The 3-D draw paths: slice t == the 2-D draw at the same seed."""

    def test_delay_sample_trials_slices_match_sample_grid(self):
        models = [ShiftedExponentialDelay(0.5 + i, 0.1 * i) for i in range(5)]
        loads = [2, 3, 4, 5, 6]
        seeds = [np.random.SeedSequence(i) for i in range(3)]
        tensor = ShiftedExponentialDelay.sample_trials(
            models, loads, [np.random.default_rng(s) for s in seeds], 7
        )
        assert tensor.shape == (3, 7, 5)
        for t, seed in enumerate(seeds):
            expected = ShiftedExponentialDelay.sample_grid(
                models, loads, np.random.default_rng(seed), 7
            )
            np.testing.assert_array_equal(tensor[t], expected)

    def test_mixed_models_fall_back_to_the_generic_trials_path(self):
        models = [ShiftedExponentialDelay(1.0), ParetoDelay(2.0, 0.1)]
        loads = [2, 3]
        seeds = [np.random.SeedSequence(i) for i in range(2)]
        tensor = DelayModel.sample_trials(
            models, loads, [np.random.default_rng(s) for s in seeds], 4
        )
        for t, seed in enumerate(seeds):
            expected = DelayModel.sample_grid(
                models, loads, np.random.default_rng(seed), 4
            )
            np.testing.assert_array_equal(tensor[t], expected)

    def test_deterministic_delay_consumes_no_randomness(self):
        models = [DeterministicDelay(0.1 * (i + 1)) for i in range(4)]
        rngs = [np.random.default_rng(i) for i in range(3)]
        states = [rng.bit_generator.state for rng in rngs]
        tensor = DeterministicDelay.sample_trials(models, [1, 2, 3, 4], rngs, 5)
        assert tensor.shape == (3, 5, 4)
        assert (tensor == tensor[0, 0]).all()
        for rng, state in zip(rngs, states):
            assert rng.bit_generator.state == state

    def test_communication_sample_trials_slices_match_sample_batch(self):
        comm = LinearCommunicationModel(latency=0.01, seconds_per_unit=0.1, jitter=0.2)
        sizes = np.array([1.0, 2.0, 0.5])
        seeds = [np.random.SeedSequence(i) for i in range(3)]
        stack = comm.sample_trials(sizes, [np.random.default_rng(s) for s in seeds])
        assert stack.shape == (3, 3)
        for t, seed in enumerate(seeds):
            expected = comm.sample_batch(sizes, np.random.default_rng(seed))
            np.testing.assert_array_equal(stack[t], expected)

    def test_deterministic_communication_broadcasts_without_drawing(self):
        comm = LinearCommunicationModel(latency=0.01, seconds_per_unit=0.1)
        rngs = [np.random.default_rng(i) for i in range(2)]
        states = [rng.bit_generator.state for rng in rngs]
        stack = comm.sample_trials(np.array([1.0, 2.0]), rngs)
        np.testing.assert_array_equal(stack[0], stack[1])
        for rng, state in zip(rngs, states):
            assert rng.bit_generator.state == state


class TestRunBatchBackend:
    def spec(self, engine=None, **overrides):
        cluster = make_cluster("bcc")
        options = {"backend_options": {"engine": engine}} if engine else {}
        options.update(overrides)
        return JobSpec(
            scheme={"name": "bcc", "load": 6},
            cluster=cluster,
            num_units=24,
            num_iterations=ITERATIONS,
            seed=0,
            **options,
        )

    def test_run_batch_matches_solo_runs(self):
        backend = TimingSimBackend(engine="vectorized")
        spec = self.spec()
        seeds = np.random.SeedSequence(9).spawn(3)
        results = backend.run_batch(spec, seeds)
        solo0 = backend.run(spec.replace(seed=seeds[0]))
        assert results[0].summary() == solo0.summary()
        assert all(result.backend == "timing" for result in results)

    def test_run_batch_summary_record_keeps_aggregates(self):
        backend = TimingSimBackend(engine="vectorized")
        seeds = np.random.SeedSequence(9).spawn(3)
        full = backend.run_batch(self.spec(), seeds)
        compact = backend.run_batch(self.spec(), seeds, record="summary")
        for a, b in zip(full, compact):
            assert a.summary() == b.summary()
            assert a.total_time == b.total_time
            assert a.num_iterations == b.num_iterations
            assert len(b.iterations) == 0

    def test_loop_engine_refuses_trial_batching(self):
        backend = TimingSimBackend(engine="loop")
        assert not backend.supports_trial_batching(self.spec())
        with pytest.raises(ConfigurationError, match="vectorized"):
            backend.run_batch(self.spec(), np.random.SeedSequence(0).spawn(2))

    def test_spec_level_engine_override_wins(self):
        backend = TimingSimBackend(engine="vectorized")
        assert not backend.supports_trial_batching(self.spec(engine="loop"))

    def test_unknown_record_mode_rejected(self):
        backend = TimingSimBackend(engine="vectorized")
        with pytest.raises(ConfigurationError, match="record"):
            backend.run_batch(self.spec(), [0, 1], record="everything")

    def test_unknown_backend_option_rejected_like_run(self):
        backend = TimingSimBackend(engine="vectorized")
        spec = self.spec(backend_options={"engine": "vectorized", "warp": 9})
        with pytest.raises(ConfigurationError, match="warp"):
            backend.run(spec)
        with pytest.raises(ConfigurationError, match="warp"):
            backend.run_batch(spec, [0, 1])

    def test_compact_does_not_alias_extras(self):
        backend = TimingSimBackend(engine="vectorized")
        result = backend.run(self.spec())
        result.extras["note"] = "original"
        compact = result.compact()
        result.extras["note"] = "mutated"
        assert compact.extras["note"] == "original"
