"""Exactness tests: every scheme's decoded gradient equals the true full gradient."""

import numpy as np
import pytest

from repro.datasets.batching import make_batches
from repro.datasets.synthetic import make_linear_regression_data, make_paper_logistic_data, LogisticDataConfig
from repro.exceptions import CoverageError
from repro.gradients.evaluation import full_gradient
from repro.gradients.least_squares import LeastSquaresLoss
from repro.gradients.logistic import LogisticLoss
from repro.schemes.bcc import BCCScheme
from repro.schemes.coded import (
    CyclicRepetitionScheme,
    FractionalRepetitionScheme,
    ReedSolomonScheme,
)
from repro.schemes.heterogeneous import GeneralizedBCCScheme, LoadBalancedScheme
from repro.schemes.randomized import SimpleRandomizedScheme
from repro.schemes.uncoded import UncodedScheme
from repro.simulation.execution import (
    distributed_gradient,
    unit_gradient_matrix,
    worker_message,
)


@pytest.fixture
def logistic_problem():
    config = LogisticDataConfig(num_examples=24, num_features=6)
    dataset, _ = make_paper_logistic_data(config, seed=0)
    model = LogisticLoss()
    weights = np.random.default_rng(1).standard_normal(6) * 0.3
    return model, dataset, weights


class TestUnitGradients:
    def test_example_granularity(self, logistic_problem):
        model, dataset, weights = logistic_problem
        matrix = unit_gradient_matrix(model, dataset, weights, units=[0, 5, 7])
        expected = model.per_example_gradients(
            weights, dataset.features[[0, 5, 7]], dataset.labels[[0, 5, 7]]
        )
        np.testing.assert_allclose(matrix, expected, atol=1e-12)

    def test_batch_granularity(self, logistic_problem):
        model, dataset, weights = logistic_problem
        spec = make_batches(dataset.num_examples, 6)
        matrix = unit_gradient_matrix(model, dataset, weights, units=[1], unit_spec=spec)
        indices = spec.batch_indices(1)
        expected = model.gradient_sum(
            weights, dataset.features[indices], dataset.labels[indices]
        )
        np.testing.assert_allclose(matrix[0], expected, atol=1e-12)

    def test_worker_message_empty_for_idle_worker(self, logistic_problem):
        model, dataset, weights = logistic_problem
        plan = LoadBalancedScheme(loads=[24, 0]).build_plan(24, 2)
        assert worker_message(plan, 1, model, dataset, weights).size == 0


HOMOGENEOUS_SCHEMES = [
    ("uncoded", UncodedScheme(), 24, 6),
    ("bcc", BCCScheme(load=4), 24, 12),
    ("randomized", SimpleRandomizedScheme(load=6), 24, 12),
    ("cyclic-repetition", CyclicRepetitionScheme(load=3), 12, 12),
    ("reed-solomon", ReedSolomonScheme(load=3), 12, 12),
    ("fractional-repetition", FractionalRepetitionScheme(load=3), 12, 12),
]


class TestDistributedGradientExactness:
    @pytest.mark.parametrize(
        "name, scheme, num_units, num_workers",
        HOMOGENEOUS_SCHEMES,
        ids=[case[0] for case in HOMOGENEOUS_SCHEMES],
    )
    def test_decoded_gradient_is_exact(self, name, scheme, num_units, num_workers, rng):
        dataset, _ = make_linear_regression_data(num_units, 5, seed=3)
        model = LeastSquaresLoss()
        weights = rng.standard_normal(5)
        plan = scheme.build_feasible_plan(num_units, num_workers, rng=rng)
        order = rng.permutation(num_workers)
        gradient, workers_heard = distributed_gradient(
            plan, model, dataset, weights, order
        )
        expected = full_gradient(model, dataset, weights)
        np.testing.assert_allclose(gradient, expected, atol=1e-8)
        assert 1 <= workers_heard <= num_workers

    def test_batch_unit_granularity_exactness(self, logistic_problem, rng):
        model, dataset, weights = logistic_problem
        spec = make_batches(dataset.num_examples, 4)  # 6 batches
        plan = BCCScheme(load=2).build_feasible_plan(spec.num_batches, 20, rng=rng)
        gradient, _ = distributed_gradient(
            plan, model, dataset, weights, rng.permutation(20), unit_spec=spec
        )
        np.testing.assert_allclose(
            gradient, full_gradient(model, dataset, weights), atol=1e-10
        )

    def test_heterogeneous_schemes_exactness(self, rng):
        dataset, _ = make_linear_regression_data(30, 4, seed=5)
        model = LeastSquaresLoss()
        weights = rng.standard_normal(4)
        expected = full_gradient(model, dataset, weights)

        generalized = GeneralizedBCCScheme(loads=[10, 15, 20, 8, 12])
        plan = generalized.build_feasible_plan(30, 5, rng=rng)
        gradient, _ = distributed_gradient(plan, model, dataset, weights, rng.permutation(5))
        np.testing.assert_allclose(gradient, expected, atol=1e-10)

        balanced = LoadBalancedScheme(loads=[6, 6, 6, 6, 6])
        plan = balanced.build_plan(30, 5, rng=rng)
        gradient, _ = distributed_gradient(plan, model, dataset, weights, range(5))
        np.testing.assert_allclose(gradient, expected, atol=1e-10)

    def test_insufficient_workers_raise(self, rng):
        dataset, _ = make_linear_regression_data(12, 3, seed=6)
        model = LeastSquaresLoss()
        plan = UncodedScheme().build_plan(12, 6)
        with pytest.raises(CoverageError):
            distributed_gradient(plan, model, dataset, np.zeros(3), [0, 1, 2])

    def test_bcc_stops_before_hearing_everyone(self, rng):
        dataset, _ = make_linear_regression_data(20, 3, seed=7)
        model = LeastSquaresLoss()
        plan = BCCScheme(load=10).build_feasible_plan(20, 40, rng=rng)  # 2 batches
        _, workers_heard = distributed_gradient(
            plan, model, dataset, np.zeros(3), rng.permutation(40)
        )
        assert workers_heard < 40
