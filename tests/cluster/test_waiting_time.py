"""Tests for the Monte-Carlo waiting-time estimators."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.cluster.waiting_time import (
    estimate_coverage_time,
    estimate_expected_threshold_time,
    sample_completion_times,
    sample_coverage_time,
    sample_threshold_time,
)
from repro.coding.placement import heterogeneous_random_placement
from repro.exceptions import AllocationError
from repro.stragglers.models import DeterministicDelay, ExponentialDelay


@pytest.fixture
def deterministic_cluster():
    return ClusterSpec.homogeneous(4, DeterministicDelay(seconds_per_example=1.0))


class TestSampleCompletionTimes:
    def test_shape_and_idle_workers(self, deterministic_cluster):
        times = sample_completion_times(
            deterministic_cluster, np.array([1, 0, 2, 3]), rng=0, num_trials=5
        )
        assert times.shape == (5, 4)
        assert np.all(np.isinf(times[:, 1]))
        np.testing.assert_allclose(times[:, 0], 1.0)
        np.testing.assert_allclose(times[:, 3], 3.0)

    def test_wrong_length_rejected(self, deterministic_cluster):
        with pytest.raises(AllocationError):
            sample_completion_times(deterministic_cluster, np.array([1, 2]), rng=0)


class TestThresholdTime:
    def test_deterministic_threshold(self, deterministic_cluster):
        # Loads 1,2,3,4 finish at times 1,2,3,4; cumulative loads in time
        # order are 1,3,6,10, so T-hat(5) = 3 and T-hat(10) = 4.
        loads = np.array([1, 2, 3, 4])
        times = sample_threshold_time(deterministic_cluster, loads, target=5, rng=0)
        assert times[0] == pytest.approx(3.0)
        times = sample_threshold_time(deterministic_cluster, loads, target=10, rng=0)
        assert times[0] == pytest.approx(4.0)

    def test_unreachable_target_is_inf(self, deterministic_cluster):
        loads = np.array([1, 1, 1, 1])
        times = sample_threshold_time(deterministic_cluster, loads, target=5, rng=0)
        assert np.isinf(times[0])

    def test_estimate_raises_on_unreachable(self, deterministic_cluster):
        with pytest.raises(AllocationError):
            estimate_expected_threshold_time(
                deterministic_cluster, np.array([1, 1, 1, 1]), target=5, rng=0
            )

    def test_monotone_in_target(self):
        # Lemma 1 of the paper: E[T-hat(s)] is non-decreasing in s.
        cluster = ClusterSpec.homogeneous(10, ExponentialDelay(straggling=1.0))
        loads = np.full(10, 3)
        small = estimate_expected_threshold_time(
            cluster, loads, target=5, rng=0, num_trials=400
        )
        large = estimate_expected_threshold_time(
            cluster, loads, target=25, rng=0, num_trials=400
        )
        assert large >= small


class TestCoverageTime:
    def test_deterministic_disjoint_coverage(self, deterministic_cluster):
        # Workers hold disjoint quarters of 8 examples; coverage needs all
        # four workers, and the slowest (load 2 each -> time 2) decides.
        assignment = [np.arange(0, 2), np.arange(2, 4), np.arange(4, 6), np.arange(6, 8)]
        times = sample_coverage_time(
            deterministic_cluster, 8, lambda gen: assignment, rng=0, num_trials=3
        )
        np.testing.assert_allclose(times, 2.0)

    def test_redundant_assignment_faster_than_waiting_for_all(self):
        cluster = ClusterSpec.homogeneous(12, ExponentialDelay(straggling=1.0))
        num_examples = 6

        def full_replication(gen):
            return [np.arange(num_examples)] * 12

        def disjoint(gen):
            return [np.array([i % num_examples]) for i in range(12)]

        replicated = estimate_coverage_time(
            cluster, num_examples, full_replication, rng=0, num_trials=200
        )
        spread = estimate_coverage_time(
            cluster, num_examples, disjoint, rng=1, num_trials=200, allow_incomplete=True
        )
        # Full replication completes at the fastest worker; the disjoint
        # placement needs at least one worker per example.
        assert replicated < spread

    def test_incomplete_coverage_raises_or_is_dropped(self, deterministic_cluster):
        assignment = [np.array([0]), np.array([0]), np.array([1]), np.array([1])]
        with pytest.raises(AllocationError):
            estimate_coverage_time(
                deterministic_cluster, 3, lambda gen: assignment, rng=0, num_trials=2
            )

    def test_wrong_worker_count_rejected(self, deterministic_cluster):
        with pytest.raises(AllocationError):
            sample_coverage_time(
                deterministic_cluster, 4, lambda gen: [np.array([0])], rng=0
            )

    def test_random_assignment_sampler_integration(self):
        cluster = ClusterSpec.homogeneous(10, ExponentialDelay(straggling=1.0))
        loads = np.full(10, 4)

        def sampler(gen):
            return heterogeneous_random_placement(8, loads, gen).assignments

        value = estimate_coverage_time(
            cluster, 8, sampler, rng=0, num_trials=100, allow_incomplete=True
        )
        assert value > 0
