"""Tests for WorkerSpec / ClusterSpec."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec, WorkerSpec
from repro.exceptions import ConfigurationError
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import DeterministicDelay, ShiftedExponentialDelay


class TestWorkerSpec:
    def test_requires_delay_model(self):
        with pytest.raises(ConfigurationError):
            WorkerSpec(compute="fast")

    def test_holds_model(self):
        model = DeterministicDelay(1.0)
        assert WorkerSpec(compute=model).compute is model


class TestClusterSpec:
    def test_homogeneous_builder(self):
        cluster = ClusterSpec.homogeneous(5, DeterministicDelay(1.0))
        assert cluster.num_workers == 5
        assert len(cluster.delay_models()) == 5

    def test_requires_workers(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(workers=())

    def test_rejects_non_workerspec(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(workers=(DeterministicDelay(1.0),))

    def test_rejects_bad_communication(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(
                workers=(WorkerSpec(DeterministicDelay(1.0)),), communication="fast"
            )

    def test_custom_communication_kept(self):
        communication = LinearCommunicationModel(seconds_per_unit=0.5)
        cluster = ClusterSpec.homogeneous(2, DeterministicDelay(1.0), communication)
        assert cluster.communication is communication


class TestShiftedExponentialCluster:
    def test_parameter_arrays_roundtrip(self):
        cluster = ClusterSpec.shifted_exponential([1.0, 2.0, 3.0], [0.1, 0.2, 0.3])
        np.testing.assert_allclose(cluster.straggling_parameters(), [1.0, 2.0, 3.0])
        np.testing.assert_allclose(cluster.shift_parameters(), [0.1, 0.2, 0.3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.shifted_exponential([1.0, 2.0], [0.1])

    def test_parameters_require_shift_exponential_workers(self):
        cluster = ClusterSpec.homogeneous(2, DeterministicDelay(1.0))
        with pytest.raises(ConfigurationError):
            cluster.straggling_parameters()


class TestPaperFig5Cluster:
    def test_default_composition(self):
        cluster = ClusterSpec.paper_fig5_cluster()
        assert cluster.num_workers == 100
        stragglings = cluster.straggling_parameters()
        assert np.sum(stragglings == 1.0) == 95
        assert np.sum(stragglings == 20.0) == 5
        np.testing.assert_allclose(cluster.shift_parameters(), 20.0)

    def test_custom_composition(self):
        cluster = ClusterSpec.paper_fig5_cluster(num_workers=10, num_fast=2)
        stragglings = cluster.straggling_parameters()
        assert np.sum(stragglings == 20.0) == 2

    def test_invalid_num_fast(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.paper_fig5_cluster(num_workers=5, num_fast=6)

    def test_workers_are_shift_exponential(self):
        cluster = ClusterSpec.paper_fig5_cluster(num_workers=4, num_fast=1)
        assert all(
            isinstance(worker.compute, ShiftedExponentialDelay)
            for worker in cluster.workers
        )
