"""Tests for DynamicClusterSpec, ChurnEvent, and timeline materialisation."""

import numpy as np
import pytest

from repro.cluster.dynamic import ChurnEvent, ClusterTimeline, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.exceptions import AnalyticIntractableError, ConfigurationError
from repro.stragglers.dynamics import (
    DriftingDelay,
    MarkovModulatedDelay,
    UnavailableDelay,
)
from repro.stragglers.models import DeterministicDelay, ShiftedExponentialDelay


@pytest.fixture
def base() -> ClusterSpec:
    return ClusterSpec.homogeneous(6, ShiftedExponentialDelay(1.0, 0.1))


class TestChurnEvent:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ChurnEvent("explode", 0, 0)
        with pytest.raises(ConfigurationError, match="worker"):
            ChurnEvent("leave", -1, 0)
        with pytest.raises(ConfigurationError, match="iteration"):
            ChurnEvent("leave", 0, -1)
        with pytest.raises(ValueError):
            ChurnEvent("preempt", 0, 0, recovery=0)
        with pytest.raises(ConfigurationError, match="preempt"):
            ChurnEvent("leave", 0, 0, recovery=2)

    def test_from_config(self):
        event = ChurnEvent.from_config(
            {"kind": "preempt", "worker": 2, "iteration": 5, "recovery": 3}
        )
        assert event == ChurnEvent("preempt", 2, 5, 3)
        with pytest.raises(ConfigurationError, match="missing"):
            ChurnEvent.from_config({"kind": "leave", "worker": 1})
        with pytest.raises(ConfigurationError, match="does not accept"):
            ChurnEvent.from_config(
                {"kind": "leave", "worker": 1, "iteration": 0, "extra": 1}
            )


class TestDynamicClusterSpec:
    def test_requires_some_time_variation(self, base):
        with pytest.raises(ConfigurationError, match="time .*variation|variation"):
            DynamicClusterSpec(base)

    def test_requires_a_cluster_base(self):
        with pytest.raises(ConfigurationError, match="ClusterSpec"):
            DynamicClusterSpec("not-a-cluster", dynamics="drift")

    def test_event_worker_out_of_range(self, base):
        with pytest.raises(ConfigurationError, match="targets worker"):
            DynamicClusterSpec(base, events=[ChurnEvent("leave", 99, 0)])

    def test_initially_absent_out_of_range(self, base):
        with pytest.raises(ConfigurationError, match="out of range"):
            DynamicClusterSpec(base, initially_absent=[6])

    def test_events_accept_config_mappings(self, base):
        spec = DynamicClusterSpec(
            base,
            events=[{"kind": "leave", "worker": 1, "iteration": 2}],
        )
        assert spec.events == (ChurnEvent("leave", 1, 2),)

    def test_per_worker_dynamics_mapping(self, base):
        spec = DynamicClusterSpec(
            base,
            dynamics={0: "drift", 3: {"name": "markov", "slowdown": 2.0}},
        )
        processes = spec._processes
        assert isinstance(processes[0], DriftingDelay)
        assert isinstance(processes[3], MarkovModulatedDelay)
        assert processes[1] is None

    def test_per_worker_mapping_rejects_bad_keys(self, base):
        with pytest.raises(ConfigurationError, match="worker index"):
            DynamicClusterSpec(base, dynamics={"zero": "drift"})
        with pytest.raises(ConfigurationError, match="target worker"):
            DynamicClusterSpec(base, dynamics={42: "drift"})

    def test_availability_schedule(self, base):
        spec = DynamicClusterSpec(
            base,
            initially_absent=[4],
            events=[
                ChurnEvent("preempt", 2, 3, 2),
                ChurnEvent("leave", 5, 6),
                ChurnEvent("join", 5, 8),
                ChurnEvent("join", 4, 5),
            ],
        )
        up = spec.availability(10)
        assert not up[:, 4][:5].any() and up[5:, 4].all()  # scale-out join
        assert not up[3:5, 2].any() and up[5:, 2].all()  # preempt + rejoin
        assert up[:6, 5].all() and not up[6:8, 5].any() and up[8:, 5].all()

    def test_events_beyond_the_horizon_are_ignored(self, base):
        spec = DynamicClusterSpec(base, events=[ChurnEvent("leave", 0, 50)])
        assert spec.availability(10).all()

    def test_analytic_entry_points_raise_typed_error(self, base):
        spec = DynamicClusterSpec(base, dynamics="drift")
        for method in ("delay_models", "straggling_parameters", "shift_parameters"):
            with pytest.raises(AnalyticIntractableError, match="non-stationary"):
                getattr(spec, method)()


class TestMaterialize:
    def test_consumes_exactly_one_draw_without_a_pinned_seed(self, base):
        spec = DynamicClusterSpec(base, dynamics="drift")
        probe = np.random.default_rng(0)
        spec.materialize(5, probe)
        reference = np.random.default_rng(0)
        reference.integers(0, 2**63)
        assert probe.bit_generator.state == reference.bit_generator.state

    def test_pinned_seed_consumes_nothing_and_fixes_the_scenario(self, base):
        spec = DynamicClusterSpec(
            base, dynamics={"name": "preempt", "preempt_probability": 0.3}, seed=7
        )
        probe = np.random.default_rng(0)
        state = probe.bit_generator.state
        timeline_a = spec.materialize(20, probe)
        assert probe.bit_generator.state == state
        timeline_b = spec.materialize(20, np.random.default_rng(999))
        np.testing.assert_array_equal(
            timeline_a.availability, timeline_b.availability
        )

    def test_timeline_is_deterministic_under_the_job_seed(self, base):
        spec = DynamicClusterSpec(
            base, dynamics={"name": "markov", "p_slow": 0.4}
        )
        timelines = [
            spec.materialize(8, np.random.default_rng(3)) for _ in range(2)
        ]
        for row_a, row_b in zip(timelines[0].models, timelines[1].models):
            assert [repr(m) for m in row_a] == [repr(m) for m in row_b]

    def test_vacant_slots_hold_unavailable_models(self, base):
        spec = DynamicClusterSpec(base, events=[ChurnEvent("leave", 2, 1)])
        timeline = spec.materialize(3, np.random.default_rng(0))
        assert not isinstance(timeline.models[0][2], UnavailableDelay)
        assert isinstance(timeline.models[1][2], UnavailableDelay)
        assert isinstance(timeline.models[2][2], UnavailableDelay)
        assert timeline.availability[1:, 2].sum() == 0

    def test_cluster_at_snapshots_share_communication_and_names(self, base):
        spec = DynamicClusterSpec(base, dynamics="drift")
        timeline = spec.materialize(4, np.random.default_rng(0))
        snapshot = timeline.cluster_at(2)
        assert snapshot.num_workers == base.num_workers
        assert snapshot.communication is base.communication
        assert [w.name for w in snapshot.workers] == [w.name for w in base.workers]

    def test_worker_spec_cache_reuses_frozen_specs(self, base):
        spec = DynamicClusterSpec(
            base, dynamics={"name": "markov", "p_slow": 0.0}
        )
        timeline = spec.materialize(3, np.random.default_rng(0))
        first = timeline.cluster_at(0).workers[0]
        again = timeline.cluster_at(1).workers[0]
        assert first is again

    def test_process_returning_wrong_length_raises(self, base):
        class Broken(DriftingDelay):
            def timeline(self, model, num_iterations, rng=None):
                return [model]

        spec = DynamicClusterSpec(base, dynamics=Broken())
        with pytest.raises(ConfigurationError, match="returned 1 models"):
            spec.materialize(5, np.random.default_rng(0))

    def test_timeline_shape_validation(self, base):
        with pytest.raises(ConfigurationError, match="matrix"):
            ClusterTimeline(
                base,
                [[DeterministicDelay(1.0)] * base.num_workers],
                np.ones((2, base.num_workers), dtype=bool),
            )
