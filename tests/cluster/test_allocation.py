"""Tests for the heterogeneous load-allocation strategies."""

import numpy as np
import pytest

from repro.cluster.allocation import (
    AllocationResult,
    expected_aggregate_return,
    load_balanced_allocation,
    optimal_rate_per_load,
    solve_p2_allocation,
    uniform_allocation,
)
from repro.cluster.spec import ClusterSpec
from repro.exceptions import AllocationError


@pytest.fixture
def heterogeneous_cluster():
    # 6 slow workers (mu=1) and 2 fast workers (mu=10), all with shift 2.
    stragglings = [1.0] * 6 + [10.0] * 2
    shifts = [2.0] * 8
    return ClusterSpec.shifted_exponential(stragglings, shifts)


class TestAllocationResult:
    def test_properties(self):
        result = AllocationResult(
            loads=np.array([2, 0, 3]), deadline=1.0, target=5, strategy="x"
        )
        assert result.total_load == 5
        assert result.max_load == 3

    def test_negative_loads_rejected(self):
        with pytest.raises(AllocationError):
            AllocationResult(
                loads=np.array([-1, 2]), deadline=1.0, target=1, strategy="x"
            )

    def test_non_1d_rejected(self):
        with pytest.raises(AllocationError):
            AllocationResult(
                loads=np.zeros((2, 2)), deadline=1.0, target=1, strategy="x"
            )


class TestOptimalRate:
    def test_faster_workers_get_higher_rates(self, heterogeneous_cluster):
        rates, successes = optimal_rate_per_load(heterogeneous_cluster)
        assert rates.shape == (8,)
        assert rates[-1] > rates[0]  # mu=10 worker beats mu=1 worker
        assert np.all((successes > 0) & (successes < 1))

    def test_zero_shift_falls_back(self):
        cluster = ClusterSpec.shifted_exponential([2.0, 2.0], [0.0, 0.0])
        rates, successes = optimal_rate_per_load(cluster)
        np.testing.assert_allclose(rates, 2.0)
        np.testing.assert_allclose(successes, 1 - np.exp(-1.0))


class TestSolveP2:
    def test_loads_cover_target_in_expectation(self, heterogeneous_cluster):
        allocation = solve_p2_allocation(heterogeneous_cluster, target=100)
        assert allocation.total_load >= 100
        expected = expected_aggregate_return(
            heterogeneous_cluster, allocation.loads, allocation.deadline
        )
        # Ceil-rounding can only increase the expected return above the target.
        assert expected >= 100 * 0.95

    def test_fast_workers_assigned_more(self, heterogeneous_cluster):
        allocation = solve_p2_allocation(heterogeneous_cluster, target=100)
        assert allocation.loads[-1] > allocation.loads[0]

    def test_max_load_cap_respected(self, heterogeneous_cluster):
        allocation = solve_p2_allocation(heterogeneous_cluster, target=100, max_load=10)
        assert allocation.max_load <= 10

    def test_deadline_positive(self, heterogeneous_cluster):
        allocation = solve_p2_allocation(heterogeneous_cluster, target=50)
        assert allocation.deadline > 0

    def test_better_than_naive_on_expected_threshold_time(self, heterogeneous_cluster):
        # The P2 loads should reach the target no later (in expectation) than
        # a uniform split of the same total load.
        from repro.cluster.waiting_time import estimate_expected_threshold_time

        target = 60
        allocation = solve_p2_allocation(heterogeneous_cluster, target=target)
        uniform_loads = np.full(8, int(np.ceil(allocation.total_load / 8)))
        p2_time = estimate_expected_threshold_time(
            heterogeneous_cluster, allocation.loads, target, rng=0, num_trials=300
        )
        uniform_time = estimate_expected_threshold_time(
            heterogeneous_cluster, uniform_loads, target, rng=1, num_trials=300
        )
        assert p2_time <= uniform_time * 1.05

    def test_invalid_target(self, heterogeneous_cluster):
        with pytest.raises((ValueError, TypeError)):
            solve_p2_allocation(heterogeneous_cluster, target=0)


class TestLoadBalanced:
    def test_loads_sum_to_dataset(self, heterogeneous_cluster):
        allocation = load_balanced_allocation(heterogeneous_cluster, 101)
        assert allocation.total_load == 101

    def test_proportional_to_speed(self, heterogeneous_cluster):
        allocation = load_balanced_allocation(heterogeneous_cluster, 160)
        # Fast workers (mu=10) should get about 10x the slow workers' share.
        assert allocation.loads[-1] >= 5 * allocation.loads[0]

    def test_homogeneous_is_even(self):
        cluster = ClusterSpec.shifted_exponential([1.0] * 4, [1.0] * 4)
        allocation = load_balanced_allocation(cluster, 12)
        np.testing.assert_array_equal(allocation.loads, [3, 3, 3, 3])


class TestUniform:
    def test_even_split_with_remainder(self, heterogeneous_cluster):
        allocation = uniform_allocation(heterogeneous_cluster, 10)
        assert allocation.total_load == 10
        assert allocation.max_load - allocation.loads.min() <= 1


class TestExpectedAggregateReturn:
    def test_monotone_in_deadline(self, heterogeneous_cluster):
        loads = np.full(8, 5)
        early = expected_aggregate_return(heterogeneous_cluster, loads, 5.0)
        late = expected_aggregate_return(heterogeneous_cluster, loads, 50.0)
        assert late >= early

    def test_zero_loads_contribute_nothing(self, heterogeneous_cluster):
        loads = np.zeros(8, dtype=int)
        assert expected_aggregate_return(heterogeneous_cluster, loads, 100.0) == 0.0

    def test_wrong_length_rejected(self, heterogeneous_cluster):
        with pytest.raises(AllocationError):
            expected_aggregate_return(heterogeneous_cluster, np.ones(3, dtype=int), 1.0)
