"""Keep the docs site and README cross-references structurally green.

CI builds the Sphinx site with warnings-as-errors and runs its link check;
this test covers the part that must hold *without* Sphinx installed — every
``:doc:`` target and toctree entry resolves to an existing page, every
``automodule`` names an importable module, and every relative link in the
README points at a file in the repository — so a broken reference fails the
ordinary test suite, not just the docs job.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs"


def _rst_sources() -> list[Path]:
    return sorted(DOCS.rglob("*.rst"))


def test_docs_tree_exists():
    assert (DOCS / "conf.py").is_file()
    assert (DOCS / "index.rst").is_file()
    assert _rst_sources(), "the docs tree holds no .rst pages"


def test_doc_roles_and_toctrees_resolve():
    pages = {
        str(path.relative_to(DOCS).with_suffix("")).replace("\\", "/")
        for path in _rst_sources()
    }
    for path in _rst_sources():
        text = path.read_text()
        base = path.parent.relative_to(DOCS)
        for target in re.findall(r":doc:`(?:[^<`]*<)?([^>`]+)>?`", text):
            target = target.strip()
            if target.startswith("/"):
                resolved = target[1:]
            else:
                resolved = str((base / target)).replace("\\", "/").lstrip("./") or target
            assert resolved in pages, f"{path}: :doc:`{target}` has no page"
        in_toctree = False
        indent = 0
        for line in text.splitlines():
            if re.match(r"\s*\.\.\s+toctree::", line):
                in_toctree = True
                indent = len(line) - len(line.lstrip())
                continue
            if in_toctree:
                if not line.strip():
                    continue
                if len(line) - len(line.lstrip()) <= indent:
                    in_toctree = False
                    continue
                entry = line.strip()
                if entry.startswith(":"):
                    continue
                resolved = str((base / entry)).replace("\\", "/").lstrip("./") or entry
                assert resolved in pages, f"{path}: toctree entry {entry!r} has no page"


def test_automodule_targets_import():
    for path in _rst_sources():
        for module in re.findall(r"\.\.\s+automodule::\s+([\w.]+)", path.read_text()):
            importlib.import_module(module)


def test_readme_relative_links_point_at_real_files():
    readme = (REPO_ROOT / "README.md").read_text()
    for target in re.findall(r"\]\(([^)#]+)(?:#[^)]*)?\)", readme):
        target = target.strip()
        if re.match(r"[a-z]+://", target) or target.startswith("mailto:"):
            continue
        assert (REPO_ROOT / target).exists(), f"README links to missing {target!r}"


def test_deprecation_pointer_names_an_existing_page():
    # The legacy-shim DeprecationWarning points users at docs/registry.rst;
    # make sure the page it names cannot silently move.
    from repro.schemes import registry

    match = re.search(r"docs/[\w/]+\.rst", registry._DEPRECATION_POINTER)
    assert match, "the deprecation pointer no longer names a docs page"
    assert (REPO_ROOT / match.group(0)).is_file()


def test_ci_builds_the_docs_with_warnings_as_errors():
    workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "sphinx-build -W" in workflow, "CI no longer builds docs with -W"
    assert "-b linkcheck" in workflow, "CI no longer link-checks the docs"
