"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import TextTable, format_float, format_seconds


class TestFormatting:
    def test_format_float_digits(self):
        assert format_float(3.14159, 2) == "3.14"
        assert format_float(3.0) == "3.000"

    def test_format_seconds_suffix(self):
        assert format_seconds(4.2049) == "4.205 s"


class TestTextTable:
    def test_requires_headers(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_row_length_mismatch(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_render_contains_headers_and_cells(self):
        table = TextTable(["scheme", "K"], title="demo")
        table.add_row(["bcc", 11])
        table.add_row(["uncoded", 50.0])
        rendered = table.render()
        assert "demo" in rendered
        assert "scheme" in rendered
        assert "bcc" in rendered
        assert "50.000" in rendered  # floats get 3 decimals
        assert "11" in rendered

    def test_columns_are_aligned(self):
        table = TextTable(["name", "value"])
        table.add_row(["a", 1])
        table.add_row(["long-name", 2])
        lines = table.render().splitlines()
        # All data/header lines have equal length because of padding.
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_str_matches_render(self):
        table = TextTable(["x"])
        table.add_row([1])
        assert str(table) == table.render()
