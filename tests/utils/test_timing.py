"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import SimulatedClock, Timer, WallClock


class TestWallClock:
    def test_monotone_nonnegative(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert first >= 0.0
        assert second >= first


class TestSimulatedClock:
    def test_starts_at_zero_by_default(self):
        assert SimulatedClock().now() == 0.0

    def test_custom_start(self):
        assert SimulatedClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(start=-1.0)

    def test_advance_to(self):
        clock = SimulatedClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_advance_backwards_rejected(self):
        clock = SimulatedClock(start=2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_advance_by(self):
        clock = SimulatedClock()
        clock.advance_by(1.0)
        clock.advance_by(0.5)
        assert clock.now() == pytest.approx(1.5)

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance_by(-0.1)


class TestTimer:
    def test_accumulates_elapsed_time(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        assert first > 0.0
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
