"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_in_range,
    check_nonnegative,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int32(7), "x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive_int(0, "my_param")


class TestCheckNonnegative:
    def test_accepts_zero_and_positive(self):
        assert check_nonnegative(0, "x") == 0.0
        assert check_nonnegative(2.5, "x") == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative(-1e-9, "x")

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_nonnegative(float("nan"), "x")
        with pytest.raises(ValueError):
            check_nonnegative(float("inf"), "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "x", low=1.0, high=2.0) == 1.0
        assert check_in_range(2.0, "x", low=1.0, high=2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", low=1.0, inclusive=False)
        with pytest.raises(ValueError):
            check_in_range(2.0, "x", high=2.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range(0.5, "x", low=1.0)
        with pytest.raises(ValueError):
            check_in_range(3.0, "x", high=2.0)


class TestArrayChecks:
    def test_check_array_1d_coerces_lists(self):
        result = check_array_1d([1, 2, 3], "v")
        assert result.dtype == float
        assert result.shape == (3,)

    def test_check_array_1d_length(self):
        with pytest.raises(ValueError):
            check_array_1d([1, 2], "v", length=3)

    def test_check_array_1d_rejects_2d(self):
        with pytest.raises(ValueError):
            check_array_1d(np.zeros((2, 2)), "v")

    def test_check_array_2d_shape_checks(self):
        matrix = check_array_2d([[1, 2], [3, 4]], "m", rows=2, cols=2)
        assert matrix.shape == (2, 2)
        with pytest.raises(ValueError):
            check_array_2d(matrix, "m", rows=3)
        with pytest.raises(ValueError):
            check_array_2d(matrix, "m", cols=3)

    def test_check_array_2d_rejects_1d(self):
        with pytest.raises(ValueError):
            check_array_2d([1, 2, 3], "m")
