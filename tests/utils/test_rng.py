"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    choice_without_replacement,
    permutation,
    random_seed_sequence,
    spawn_generators,
)


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(as_generator(sequence), np.random.Generator)

    def test_numpy_integer_seed(self):
        assert isinstance(as_generator(np.int64(3)), np.random.Generator)

    def test_invalid_seed_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count_and_type(self):
        generators = spawn_generators(0, 4)
        assert len(generators) == 4
        assert all(isinstance(g, np.random.Generator) for g in generators)

    def test_children_are_independent(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.array_equal(g1.random(10), g2.random(10))

    def test_reproducible_from_int_seed(self):
        first = [g.random(3) for g in spawn_generators(5, 3)]
        second = [g.random(3) for g in spawn_generators(5, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_from_generator(self):
        parent = np.random.default_rng(1)
        children = spawn_generators(parent, 2)
        assert len(children) == 2

    def test_from_seed_sequence(self):
        children = spawn_generators(np.random.SeedSequence(9), 3)
        assert len(children) == 3

    def test_nonpositive_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, 0)


class TestHelpers:
    def test_random_seed_sequence_types(self):
        assert isinstance(random_seed_sequence(3), np.random.SeedSequence)
        assert isinstance(
            random_seed_sequence(np.random.default_rng(0)), np.random.SeedSequence
        )
        sequence = np.random.SeedSequence(1)
        assert random_seed_sequence(sequence) is sequence

    def test_permutation_is_permutation(self):
        result = permutation(0, 10)
        assert sorted(result.tolist()) == list(range(10))

    def test_choice_without_replacement_distinct(self):
        picks = choice_without_replacement(0, 20, 10)
        assert len(set(picks.tolist())) == 10
        assert picks.min() >= 0 and picks.max() < 20

    def test_choice_too_large_raises(self):
        with pytest.raises(ValueError):
            choice_without_replacement(0, 5, 6)
