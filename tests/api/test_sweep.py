"""Tests for the Sweep/run_sweep engine: cells, seeding, parallelism, tables."""

import pytest

from repro.api import JobSpec, RunResult, Sweep, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.stragglers.models import ExponentialDelay


@pytest.fixture
def base(exponential_cluster) -> JobSpec:
    return JobSpec(
        scheme={"name": "bcc", "load": 4},
        cluster=exponential_cluster,
        num_units=20,
        num_iterations=3,
        serialize_master_link=False,
        seed=0,
    )


class TestCells:
    def test_grid_is_cartesian_product_first_axis_outermost(self, base):
        sweep = Sweep(
            base,
            parameters={"scheme.load": [2, 4], "num_iterations": [1, 2, 3]},
        )
        cells = sweep.cells()
        assert len(cells) == 6
        assert cells[0] == {"scheme.load": 2, "num_iterations": 1}
        assert cells[2] == {"scheme.load": 2, "num_iterations": 3}
        assert cells[3] == {"scheme.load": 4, "num_iterations": 1}

    def test_zip_pairs_positionally(self, base):
        sweep = Sweep(
            base,
            parameters={"scheme.load": [2, 4], "num_iterations": [5, 6]},
            mode="zip",
        )
        assert sweep.cells() == [
            {"scheme.load": 2, "num_iterations": 5},
            {"scheme.load": 4, "num_iterations": 6},
        ]

    def test_zip_rejects_unequal_lengths(self, base):
        with pytest.raises(ConfigurationError, match="equal lengths"):
            Sweep(
                base,
                parameters={"scheme.load": [2, 4], "num_iterations": [5]},
                mode="zip",
            )

    def test_empty_parameters_yield_one_cell(self, base):
        assert Sweep(base).cells() == [{}]

    def test_empty_axis_rejected(self, base):
        with pytest.raises(ConfigurationError, match="no values"):
            Sweep(base, parameters={"scheme.load": []})

    def test_specs_apply_overrides(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 5]})
        loads = [spec.resolve_scheme().load for spec in sweep.specs()]
        assert loads == [2, 5]


class TestDeterminism:
    def test_serial_and_parallel_tables_are_identical(self, base):
        """The spawn seed strategy makes execution order irrelevant."""
        sweep = Sweep(
            base,
            parameters={
                "scheme": [
                    {"name": "bcc", "load": 4},
                    {"name": "uncoded"},
                    {"name": "randomized", "load": 4},
                ]
            },
            trials=3,
        )
        serial = run_sweep(sweep)
        threaded = run_sweep(sweep, max_workers=4)
        assert serial.to_table().render() == threaded.to_table().render()
        for a, b in zip(serial.records, threaded.records):
            assert a.result.summary() == b.result.summary()

    def test_process_executor_matches_serial(self, base):
        """Named backends and config schemes pickle into a process pool."""
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        serial = run_sweep(sweep)
        forked = run_sweep(sweep, max_workers=2, executor="process")
        assert serial.to_table().render() == forked.to_table().render()

    def test_rerun_is_deterministic(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        assert (
            run_sweep(sweep).to_table().render()
            == run_sweep(sweep).to_table().render()
        )

    def test_trials_differ_within_a_cell(self, base):
        sweep = Sweep(base, trials=3)
        totals = {
            record.result.total_time for record in run_sweep(sweep).records
        }
        assert len(totals) == 3

    def test_shared_strategy_refuses_parallelism(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, seed_strategy="shared")
        with pytest.raises(ConfigurationError, match="parallel"):
            run_sweep(sweep, max_workers=2)

    def test_shared_strategy_threads_one_generator(self, exponential_cluster):
        """Shared mode reproduces a hand-written sequential loop draw for draw."""
        from repro.simulation.job import simulate_job
        from repro.schemes.bcc import BCCScheme
        from repro.utils.rng import as_generator

        generator = as_generator(11)
        expected = [
            simulate_job(
                BCCScheme(load),
                exponential_cluster,
                num_units=20,
                num_iterations=3,
                rng=generator,
                serialize_master_link=False,
            ).total_time
            for load in (2, 4)
        ]
        sweep = Sweep(
            JobSpec(
                scheme={"name": "bcc"},
                cluster=exponential_cluster,
                num_units=20,
                num_iterations=3,
                serialize_master_link=False,
                seed=11,
            ),
            parameters={"scheme.load": [2, 4]},
            seed_strategy="shared",
        )
        measured = [record.result.total_time for record in run_sweep(sweep).records]
        assert measured == expected


class TestAggregation:
    def test_rows_and_aggregate(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        result = run_sweep(sweep)
        assert len(result) == 4
        rows = result.rows()
        assert rows[0]["scheme.load"] == 2
        assert rows[0]["trial"] == 0
        aggregated = result.aggregate()
        assert len(aggregated) == 2
        assert aggregated[0]["trials"] == 2
        expected = (
            result.records[0].result.total_time + result.records[1].result.total_time
        ) / 2.0
        assert aggregated[0]["total_time"] == pytest.approx(expected)

    def test_to_table_contains_params_and_metrics(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]})
        rendered = run_sweep(sweep).to_table(title="loads").render()
        assert "loads" in rendered
        assert "scheme.load" in rendered
        assert "total_time" in rendered

    def test_custom_runner_and_extras(self, base):
        def runner(spec: JobSpec) -> RunResult:
            return RunResult(
                scheme_name=str(spec.scheme["name"]),
                backend="stub",
                extras={"payload": spec.scheme["load"]},
            )

        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, backend=runner)
        records = run_sweep(sweep).records
        assert [record.result.extras["payload"] for record in records] == [2, 4]


class TestSweepValidation:
    def test_bad_mode_rejected(self, base):
        with pytest.raises(ConfigurationError, match="grid"):
            Sweep(base, mode="diagonal")

    def test_bad_seed_strategy_rejected(self, base):
        with pytest.raises(ConfigurationError, match="seed_strategy"):
            Sweep(base, seed_strategy="entropy")

    def test_bad_executor_rejected(self, base):
        with pytest.raises(ConfigurationError, match="executor"):
            run_sweep(Sweep(base), max_workers=2, executor="gpu")


class TestEngineThreading:
    """The timing-engine knob flows through the sweep layer unchanged."""

    def test_vectorized_backend_instance_matches_loop(self, base):
        from repro.api import TimingSimBackend

        sweep_kwargs = dict(
            parameters={"scheme.load": [2, 4]},
            trials=2,
        )
        loop = run_sweep(Sweep(base, backend=TimingSimBackend(engine="loop"), **sweep_kwargs))
        vectorized = run_sweep(
            Sweep(base, backend=TimingSimBackend(engine="vectorized"), **sweep_kwargs)
        )
        assert loop.to_table().render() == vectorized.to_table().render()
        for a, b in zip(loop.records, vectorized.records):
            assert a.result.summary() == b.result.summary()

    def test_engine_backend_survives_process_pool(self, base):
        from repro.api import TimingSimBackend

        sweep = Sweep(
            base,
            parameters={"scheme.load": [2, 4]},
            trials=2,
            backend=TimingSimBackend(engine="vectorized"),
        )
        serial = run_sweep(sweep)
        forked = run_sweep(sweep, max_workers=2, executor="process")
        assert serial.to_table().render() == forked.to_table().render()

    def test_engine_as_sweep_axis(self, base):
        # Each cell keeps its spawned seed across runs, so reversing the
        # engine axis pits loop against vectorized at identical seeds.
        forward = run_sweep(
            Sweep(
                base,
                parameters={
                    "backend_options": [{"engine": "loop"}, {"engine": "vectorized"}]
                },
            )
        )
        reverse = run_sweep(
            Sweep(
                base,
                parameters={
                    "backend_options": [{"engine": "vectorized"}, {"engine": "loop"}]
                },
            )
        )
        for a, b in zip(forward.records, reverse.records):
            assert a.result.summary() == b.result.summary()
