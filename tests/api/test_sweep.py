"""Tests for the Sweep/run_sweep engine: cells, seeding, parallelism, tables."""

import pytest

from repro.api import JobSpec, RunResult, Sweep, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.stragglers.models import ExponentialDelay


@pytest.fixture
def base(exponential_cluster) -> JobSpec:
    return JobSpec(
        scheme={"name": "bcc", "load": 4},
        cluster=exponential_cluster,
        num_units=20,
        num_iterations=3,
        serialize_master_link=False,
        seed=0,
    )


class TestCells:
    def test_grid_is_cartesian_product_first_axis_outermost(self, base):
        sweep = Sweep(
            base,
            parameters={"scheme.load": [2, 4], "num_iterations": [1, 2, 3]},
        )
        cells = sweep.cells()
        assert len(cells) == 6
        assert cells[0] == {"scheme.load": 2, "num_iterations": 1}
        assert cells[2] == {"scheme.load": 2, "num_iterations": 3}
        assert cells[3] == {"scheme.load": 4, "num_iterations": 1}

    def test_zip_pairs_positionally(self, base):
        sweep = Sweep(
            base,
            parameters={"scheme.load": [2, 4], "num_iterations": [5, 6]},
            mode="zip",
        )
        assert sweep.cells() == [
            {"scheme.load": 2, "num_iterations": 5},
            {"scheme.load": 4, "num_iterations": 6},
        ]

    def test_zip_rejects_unequal_lengths(self, base):
        with pytest.raises(ConfigurationError, match="equal lengths"):
            Sweep(
                base,
                parameters={"scheme.load": [2, 4], "num_iterations": [5]},
                mode="zip",
            )

    def test_empty_parameters_yield_one_cell(self, base):
        assert Sweep(base).cells() == [{}]

    def test_empty_axis_rejected(self, base):
        with pytest.raises(ConfigurationError, match="no values"):
            Sweep(base, parameters={"scheme.load": []})

    def test_specs_apply_overrides(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 5]})
        loads = [spec.resolve_scheme().load for spec in sweep.specs()]
        assert loads == [2, 5]


class TestDeterminism:
    def test_serial_and_parallel_tables_are_identical(self, base):
        """The spawn seed strategy makes execution order irrelevant."""
        sweep = Sweep(
            base,
            parameters={
                "scheme": [
                    {"name": "bcc", "load": 4},
                    {"name": "uncoded"},
                    {"name": "randomized", "load": 4},
                ]
            },
            trials=3,
        )
        serial = run_sweep(sweep)
        threaded = run_sweep(sweep, max_workers=4)
        assert serial.to_table().render() == threaded.to_table().render()
        for a, b in zip(serial.records, threaded.records):
            assert a.result.summary() == b.result.summary()

    def test_process_executor_matches_serial(self, base):
        """Named backends and config schemes pickle into a process pool."""
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        serial = run_sweep(sweep)
        forked = run_sweep(sweep, max_workers=2, executor="process")
        assert serial.to_table().render() == forked.to_table().render()

    def test_rerun_is_deterministic(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        assert (
            run_sweep(sweep).to_table().render()
            == run_sweep(sweep).to_table().render()
        )

    def test_trials_differ_within_a_cell(self, base):
        sweep = Sweep(base, trials=3)
        totals = {
            record.result.total_time for record in run_sweep(sweep).records
        }
        assert len(totals) == 3

    def test_shared_strategy_refuses_parallelism(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, seed_strategy="shared")
        with pytest.raises(ConfigurationError, match="parallel"):
            run_sweep(sweep, max_workers=2)

    def test_shared_strategy_threads_one_generator(self, exponential_cluster):
        """Shared mode reproduces a hand-written sequential loop draw for draw."""
        from repro.simulation.job import simulate_job
        from repro.schemes.bcc import BCCScheme
        from repro.utils.rng import as_generator

        generator = as_generator(11)
        expected = [
            simulate_job(
                BCCScheme(load),
                exponential_cluster,
                num_units=20,
                num_iterations=3,
                rng=generator,
                serialize_master_link=False,
            ).total_time
            for load in (2, 4)
        ]
        sweep = Sweep(
            JobSpec(
                scheme={"name": "bcc"},
                cluster=exponential_cluster,
                num_units=20,
                num_iterations=3,
                serialize_master_link=False,
                seed=11,
            ),
            parameters={"scheme.load": [2, 4]},
            seed_strategy="shared",
        )
        measured = [record.result.total_time for record in run_sweep(sweep).records]
        assert measured == expected


class TestAggregation:
    def test_rows_and_aggregate(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        result = run_sweep(sweep)
        assert len(result) == 4
        rows = result.rows()
        assert rows[0]["scheme.load"] == 2
        assert rows[0]["trial"] == 0
        aggregated = result.aggregate()
        assert len(aggregated) == 2
        assert aggregated[0]["trials"] == 2
        expected = (
            result.records[0].result.total_time + result.records[1].result.total_time
        ) / 2.0
        assert aggregated[0]["total_time"] == pytest.approx(expected)

    def test_to_table_contains_params_and_metrics(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]})
        rendered = run_sweep(sweep).to_table(title="loads").render()
        assert "loads" in rendered
        assert "scheme.load" in rendered
        assert "total_time" in rendered

    def test_partial_metric_reports_its_trial_count(self):
        """Regression: a metric missing from some trial summaries was
        silently averaged over the subset while ``trials`` reported the full
        count — nothing in the row flagged the shrunken sample."""
        from repro.api.sweep import SweepRecord, SweepResult

        def record(trial, **summary):
            return SweepRecord(
                cell=0,
                params={"scheme.load": 2},
                trial=trial,
                result=RunResult(
                    scheme_name="bcc", backend="stub", summary_data=summary
                ),
            )

        result = SweepResult(
            records=[
                record(0, total_time=1.0, recovery_threshold=10.0),
                record(1, total_time=2.0, recovery_threshold=14.0),
                record(2, total_time=3.0),  # metric missing in this trial
            ],
            parameter_names=("scheme.load",),
            trials=3,
        )
        (row,) = result.aggregate()
        assert row["trials"] == 3
        # Full-coverage metrics are unchanged: mean over all trials, no
        # count column.
        assert row["total_time"] == pytest.approx(2.0)
        assert "total_time_count" not in row
        # The partial metric reports the sample actually averaged.
        assert row["recovery_threshold"] == pytest.approx(12.0)
        assert row["recovery_threshold_count"] == 2

    def test_full_coverage_rows_have_no_count_columns(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        for row in run_sweep(sweep).aggregate():
            assert not any(key.endswith("_count") for key in row)

    def test_custom_runner_and_extras(self, base):
        def runner(spec: JobSpec) -> RunResult:
            return RunResult(
                scheme_name=str(spec.scheme["name"]),
                backend="stub",
                extras={"payload": spec.scheme["load"]},
            )

        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, backend=runner)
        records = run_sweep(sweep).records
        assert [record.result.extras["payload"] for record in records] == [2, 4]


class TestSweepValidation:
    def test_bad_mode_rejected(self, base):
        with pytest.raises(ConfigurationError, match="grid"):
            Sweep(base, mode="diagonal")

    def test_bad_seed_strategy_rejected(self, base):
        with pytest.raises(ConfigurationError, match="seed_strategy"):
            Sweep(base, seed_strategy="entropy")

    def test_bad_executor_rejected(self, base):
        with pytest.raises(ConfigurationError, match="executor"):
            run_sweep(Sweep(base), max_workers=2, executor="gpu")


class TestTrialBatchingModes:
    """The run_sweep cell fast path and its identity guarantees."""

    def _vector_sweep(self, base, schemes, trials=4):
        from repro.api import TimingSimBackend

        return Sweep(
            base,
            parameters={"scheme": schemes},
            trials=trials,
            backend=TimingSimBackend(engine="vectorized"),
        )

    def test_auto_is_identical_to_never(self, base):
        """Auto batches only where provably bit-identical — including the
        fallback for random placements (bcc re-draws per trial)."""
        sweep = self._vector_sweep(
            base,
            [
                {"name": "bcc", "load": 4},
                {"name": "uncoded"},
                {"name": "cyclic-repetition", "load": 2},
            ],
        )
        auto = run_sweep(sweep, trial_batching="auto")
        never = run_sweep(sweep, trial_batching="never")
        assert len(auto.records) == len(never.records)
        for a, b in zip(auto.records, never.records):
            assert (a.cell, a.trial) == (b.cell, b.trial)
            assert a.result.summary() == b.result.summary()

    def test_always_matches_solo_runs_with_the_shared_plan(self, base):
        from repro.api import TimingSimBackend
        from repro.simulation.vectorized import simulate_job_vectorized
        from repro.utils.rng import random_seed_sequence

        import numpy as np

        trials = 3
        sweep = Sweep(
            base,
            trials=trials,
            backend=TimingSimBackend(engine="vectorized"),
        )
        result = run_sweep(sweep, trial_batching="always")
        children = random_seed_sequence(base.seed).spawn(trials)
        generator = np.random.default_rng(children[0])
        plan = base.resolve_scheme().build_feasible_plan(
            base.num_units, base.cluster.num_workers, generator
        )
        for trial in range(trials):
            rng = generator if trial == 0 else np.random.default_rng(children[trial])
            solo = simulate_job_vectorized(
                plan,
                base.cluster,
                base.num_units,
                base.num_iterations,
                rng,
                serialize_master_link=base.serialize_master_link,
            )
            summary = dict(result.records[trial].result.summary())
            assert summary.pop("backend") == "timing"
            assert summary == solo.summary()

    def test_parallel_batched_matches_serial(self, base):
        sweep = self._vector_sweep(
            base, [{"name": "uncoded"}, {"name": "bcc", "load": 4}]
        )
        serial = run_sweep(sweep, trial_batching="always")
        pooled = run_sweep(
            sweep, max_workers=2, executor="process", trial_batching="always"
        )
        assert serial.to_table().render() == pooled.to_table().render()

    def test_unknown_mode_rejected(self, base):
        with pytest.raises(ConfigurationError, match="trial_batching"):
            run_sweep(Sweep(base), trial_batching="sometimes")

    def test_loop_engine_keeps_per_trial_tasks(self, base):
        """Trial batching silently stands down for the loop engine."""
        from repro.api import TimingSimBackend

        sweep = Sweep(
            base,
            trials=2,
            backend=TimingSimBackend(engine="loop"),
        )
        batched = run_sweep(sweep, trial_batching="always")
        plain = run_sweep(sweep, trial_batching="never")
        for a, b in zip(batched.records, plain.records):
            assert a.result.summary() == b.result.summary()


class TestRecordModes:
    def test_summary_record_preserves_tables_and_aggregates(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        full = run_sweep(sweep, record="full")
        summary = run_sweep(sweep, record="summary")
        assert full.to_table().render() == summary.to_table().render()
        assert full.aggregate() == summary.aggregate()
        for a, b in zip(full.records, summary.records):
            assert a.result.summary() == b.result.summary()
            assert len(a.result.iterations) == a.result.num_iterations
            assert len(b.result.iterations) == 0
            assert b.result.num_iterations == a.result.num_iterations
            assert b.result.total_time == a.result.total_time

    def test_summary_record_shrinks_pickles(self, base):
        import pickle

        sweep = Sweep(base.replace(num_iterations=200), trials=1)
        full = run_sweep(sweep, record="full")
        compact = run_sweep(sweep, record="summary")
        assert len(pickle.dumps(compact.records[0].result)) < len(
            pickle.dumps(full.records[0].result)
        ) / 10

    def test_summary_record_through_a_process_pool(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        serial = run_sweep(sweep)
        pooled = run_sweep(
            sweep, max_workers=2, executor="process", record="summary"
        )
        assert serial.to_table().render() == pooled.to_table().render()

    def test_unknown_record_mode_rejected(self, base):
        with pytest.raises(ConfigurationError, match="record"):
            run_sweep(Sweep(base), record="everything")


class TestPlanHoisting:
    def test_hoisting_preserves_shared_strategy_stream(self, base):
        """Draw-free planning is hoisted per cell; random planning is not —
        either way the shared-generator stream must not move."""
        for scheme in ({"name": "cyclic-repetition", "load": 2}, {"name": "bcc", "load": 4}):
            sweep = Sweep(
                base.replace(scheme=scheme),
                trials=3,
                seed_strategy="shared",
            )
            hoisted = run_sweep(sweep)
            # The reference: per-trial execution with hoisting forced off.
            from repro.api import sweep as sweep_module

            original = sweep_module._hoist_cell_plan
            try:
                sweep_module._hoist_cell_plan = lambda backend, spec, trials: spec
                reference = run_sweep(sweep)
            finally:
                sweep_module._hoist_cell_plan = original
            for a, b in zip(hoisted.records, reference.records):
                assert a.result.summary() == b.result.summary()

    def test_probe_detects_random_planning(self, base):
        from repro.api.sweep import _probe_rng_free_plan

        assert _probe_rng_free_plan(base) is None  # bcc draws its placement
        # Cyclic repetition draws its code coefficients during planning, so
        # it must also be detected as random — unlike its deterministic
        # Reed-Solomon sibling.
        random_code = base.replace(scheme={"name": "cyclic-repetition", "load": 2})
        assert _probe_rng_free_plan(random_code) is None
        deterministic = base.replace(scheme={"name": "reed-solomon", "load": 2})
        plan = _probe_rng_free_plan(deterministic)
        assert plan is not None
        assert plan.scheme_name == "reed-solomon"


class TestAggregationCache:
    def test_repeated_aggregation_is_cached(self, base):
        sweep = Sweep(base, parameters={"scheme.load": [2, 4]}, trials=2)
        result = run_sweep(sweep)
        first = result.aggregate()
        assert result._aggregate_cache is not None
        cached_rows = result._aggregate_cache[1]
        assert result.aggregate() == first
        assert result._aggregate_cache[1] is cached_rows  # served from cache

    def test_any_mutation_invalidates_the_cache(self, base):
        result = run_sweep(Sweep(base, trials=2))
        before = result.aggregate()
        # Same-length replacement — the case a len()-keyed cache would miss.
        replacement = run_sweep(Sweep(base.replace(seed=123), trials=2)).records[0]
        result.records[0] = replacement
        after = result.aggregate()
        assert after != before

    def test_in_place_result_mutation_invalidates_the_cache(self, base):
        """Editing a result's iteration log (not the records list) recomputes."""
        result = run_sweep(Sweep(base, trials=1))
        before = result.aggregate()
        assert before[0]["iterations"] == base.num_iterations
        result.records[0].result.iterations.pop()
        after = result.aggregate()
        assert after[0]["iterations"] == base.num_iterations - 1

    def test_returned_rows_are_copies(self, base):
        result = run_sweep(Sweep(base, trials=2))
        rows = result.aggregate()
        rows[0]["total_time"] = -1.0
        assert result.aggregate()[0]["total_time"] != -1.0

    def test_cache_is_dropped_on_pickle(self, base):
        import pickle

        result = run_sweep(Sweep(base, trials=2))
        result.aggregate()
        clone = pickle.loads(pickle.dumps(result))
        assert clone._aggregate_cache is None
        assert clone.aggregate() == result.aggregate()


class TestEngineThreading:
    """The timing-engine knob flows through the sweep layer unchanged."""

    def test_vectorized_backend_instance_matches_loop(self, base):
        from repro.api import TimingSimBackend

        sweep_kwargs = dict(
            parameters={"scheme.load": [2, 4]},
            trials=2,
        )
        loop = run_sweep(Sweep(base, backend=TimingSimBackend(engine="loop"), **sweep_kwargs))
        vectorized = run_sweep(
            Sweep(base, backend=TimingSimBackend(engine="vectorized"), **sweep_kwargs)
        )
        assert loop.to_table().render() == vectorized.to_table().render()
        for a, b in zip(loop.records, vectorized.records):
            assert a.result.summary() == b.result.summary()

    def test_engine_backend_survives_process_pool(self, base):
        from repro.api import TimingSimBackend

        sweep = Sweep(
            base,
            parameters={"scheme.load": [2, 4]},
            trials=2,
            backend=TimingSimBackend(engine="vectorized"),
        )
        serial = run_sweep(sweep)
        forked = run_sweep(sweep, max_workers=2, executor="process")
        assert serial.to_table().render() == forked.to_table().render()

    def test_engine_as_sweep_axis(self, base):
        # Each cell keeps its spawned seed across runs, so reversing the
        # engine axis pits loop against vectorized at identical seeds.
        forward = run_sweep(
            Sweep(
                base,
                parameters={
                    "backend_options": [{"engine": "loop"}, {"engine": "vectorized"}]
                },
            )
        )
        reverse = run_sweep(
            Sweep(
                base,
                parameters={
                    "backend_options": [{"engine": "vectorized"}, {"engine": "loop"}]
                },
            )
        )
        for a, b in zip(forward.records, reverse.records):
            assert a.result.summary() == b.result.summary()
