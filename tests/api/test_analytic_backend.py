"""AnalyticBackend behaviour plus the analytic-vs-simulation cross-validation.

The cross-validation grid pins the headline acceptance bar of the backend:
over the paper's parameter range (EC2-like homogeneous cluster, the Fig. 2 /
Fig. 4 scheme-and-load grid, both master-link modes, plus the Fig. 5-style
heterogeneous cluster) the closed-form expected runtimes agree with the
vectorized Monte-Carlo engine within 15 % relative error — and exactly where
the closed forms are exact (deterministic models, pure order statistics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    AnalyticBackend,
    JobSpec,
    Sweep,
    TimingSimBackend,
    available_backends,
    get_backend,
    run,
    run_sweep,
)
from repro.cluster.spec import ClusterSpec
from repro.exceptions import AnalyticIntractableError, ConfigurationError
from repro.experiments.ec2 import ec2_like_cluster
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import DeterministicDelay, ParetoDelay

#: Acceptance bar for analytic-vs-simulation agreement over the paper grid.
TOLERANCE = 0.15

#: Monte-Carlo iterations per cross-validation cell (vectorized engine).
CROSS_VALIDATION_ITERATIONS = 600


@pytest.fixture(scope="module")
def ec2_cluster():
    return ec2_like_cluster(50)


class TestBackendBasics:
    def test_registered_and_resolvable(self):
        assert "analytic" in available_backends()
        assert isinstance(get_backend("analytic"), AnalyticBackend)

    def test_run_result_shape(self, ec2_cluster):
        spec = JobSpec(
            scheme={"name": "bcc", "load": 10},
            cluster=ec2_cluster,
            num_units=50,
            num_iterations=25,
            unit_size=100,
            serialize_master_link=False,
        )
        result = run(spec, backend="analytic")
        assert result.backend == "analytic"
        assert result.num_iterations == 25
        assert result.total_time == pytest.approx(
            25 * result.iterations[0].total_time
        )
        summary = result.summary()
        for key in (
            "recovery_threshold",
            "communication_load",
            "communication_time",
            "computation_time",
            "total_time",
        ):
            assert key in summary
        quantiles = result.extras["analytic_quantiles"]
        assert list(quantiles) == [0.5, 0.9, 0.99]
        assert quantiles[0.5] <= quantiles[0.9] <= quantiles[0.99]
        totals = result.extras["analytic_total_quantiles"]
        assert totals[0.5] <= totals[0.9] <= totals[0.99]
        assert result.extras["analytic_variance"] >= 0.0
        assert result.extras["analytic_mode"] == "parallel"

    def test_constant_cost_in_the_iteration_budget(self, ec2_cluster):
        # The iteration log stands in for the whole budget without
        # materialising it: a hundred-million-iteration estimate must not
        # allocate per-iteration state, and its aggregates must stay exact.
        import pickle

        spec = JobSpec(
            scheme={"name": "bcc", "load": 10},
            cluster=ec2_cluster,
            num_units=50,
            num_iterations=100_000_000,
            unit_size=100,
            serialize_master_link=False,
        )
        result = run(spec, backend="analytic")
        assert result.num_iterations == 100_000_000
        per_iteration = result.iterations[0].total_time
        assert result.total_time == pytest.approx(100_000_000 * per_iteration)
        with pytest.raises(TypeError, match="immutable"):
            result.iterations.append(result.iterations[0])
        restored = pickle.loads(pickle.dumps(result))
        assert restored.num_iterations == result.num_iterations
        assert restored.total_time == pytest.approx(result.total_time)

    def test_seed_does_not_matter(self, ec2_cluster):
        spec = JobSpec(
            scheme={"name": "bcc", "load": 10},
            cluster=ec2_cluster,
            num_units=50,
            num_iterations=5,
            unit_size=100,
        )
        first = run(spec, backend="analytic")
        second = run(spec.replace(seed=12345), backend="analytic")
        assert first.total_time == second.total_time
        assert first.average_recovery_threshold == second.average_recovery_threshold

    def test_quantile_levels_option(self, ec2_cluster):
        spec = JobSpec(
            scheme="uncoded",
            cluster=ec2_cluster,
            num_units=50,
            num_iterations=2,
            backend_options={"quantiles": (0.25, 0.75)},
        )
        result = run(spec, backend="analytic")
        assert list(result.extras["analytic_quantiles"]) == [0.25, 0.75]

    def test_unknown_option_raises(self, ec2_cluster):
        spec = JobSpec(
            scheme="uncoded",
            cluster=ec2_cluster,
            num_units=50,
            backend_options={"engine": "vectorized"},
        )
        with pytest.raises(ConfigurationError, match="analytic backend"):
            run(spec, backend="analytic")

    def test_requires_cluster(self):
        spec = JobSpec(scheme="uncoded", num_units=10)
        with pytest.raises(ConfigurationError, match="cluster"):
            run(spec, backend="analytic")

    def test_intractable_models_raise_typed_error(self):
        cluster = ClusterSpec.homogeneous(10, ParetoDelay())
        spec = JobSpec(scheme="uncoded", cluster=cluster, num_units=10)
        with pytest.raises(AnalyticIntractableError, match="ParetoDelay"):
            run(spec, backend="analytic")


class TestSweepSurfacing:
    def test_sweep_names_the_offending_cell(self):
        cluster = ClusterSpec.paper_fig5_cluster(num_workers=20, num_fast=2)
        base = JobSpec(
            scheme="load-balanced",
            cluster=cluster,
            num_units=60,
            serialize_master_link=True,  # heterogeneous + serialized: no closed form
        )
        sweep = Sweep(base, backend="analytic")
        with pytest.raises(AnalyticIntractableError, match="sweep cell"):
            run_sweep(sweep)

    def test_tractable_cells_run_through_the_sweep_engine(self, ec2_cluster):
        base = JobSpec(
            scheme={"name": "bcc", "load": 10},
            cluster=ec2_cluster,
            num_units=50,
            num_iterations=10,
            unit_size=100,
            serialize_master_link=False,
        )
        sweep = Sweep(
            base,
            parameters={"scheme.load": [5, 10, 25]},
            backend="analytic",
        )
        result = run_sweep(sweep)
        thresholds = [
            record.result.average_recovery_threshold for record in result.records
        ]
        # Larger load => fewer batches => smaller recovery threshold.
        assert thresholds == sorted(thresholds, reverse=True)


def _relative_error(analytic: float, simulated: float) -> float:
    return abs(analytic - simulated) / abs(simulated)


def _cross_validate(spec: JobSpec, tolerance: float = TOLERANCE) -> None:
    analytic = run(spec, backend="analytic")
    simulated = run(
        spec.replace(num_iterations=CROSS_VALIDATION_ITERATIONS, seed=0),
        backend=TimingSimBackend(engine="vectorized"),
    )
    mean_simulated = simulated.total_time / CROSS_VALIDATION_ITERATIONS
    mean_analytic = analytic.total_time / spec.num_iterations
    assert _relative_error(mean_analytic, mean_simulated) <= tolerance, (
        f"total time: analytic {mean_analytic:.5f} vs simulated "
        f"{mean_simulated:.5f}"
    )
    assert (
        _relative_error(
            analytic.average_recovery_threshold,
            simulated.average_recovery_threshold,
        )
        <= tolerance
    ), (
        f"recovery threshold: analytic {analytic.average_recovery_threshold:.3f} "
        f"vs simulated {simulated.average_recovery_threshold:.3f}"
    )


HOMOGENEOUS_GRID = [
    {"name": "uncoded"},
    {"name": "bcc", "load": 5},
    {"name": "bcc", "load": 10},
    {"name": "bcc", "load": 25},
    {"name": "randomized", "load": 10},
    {"name": "randomized", "load": 25},
    {"name": "cyclic-repetition", "load": 10},
    {"name": "reed-solomon", "load": 10},
    {"name": "fractional-repetition", "load": 10},
    {"name": "ignore-stragglers", "wait_fraction": 0.9},
]


class TestCrossValidation:
    """Analytic vs vectorized engine within 15 % over the paper's grid."""

    @pytest.mark.parametrize(
        "scheme", HOMOGENEOUS_GRID, ids=lambda cfg: f"{cfg['name']}-{cfg.get('load', '')}"
    )
    @pytest.mark.parametrize("serialize", [False, True], ids=["parallel", "serialized"])
    def test_paper_grid_homogeneous(self, ec2_cluster, scheme, serialize):
        _cross_validate(
            JobSpec(
                scheme=scheme,
                cluster=ec2_cluster,
                num_units=50,
                num_iterations=1,
                unit_size=100,
                serialize_master_link=serialize,
            )
        )

    @pytest.mark.parametrize(
        "scheme", [{"name": "load-balanced"}, {"name": "generalized-bcc"}]
    )
    def test_fig5_heterogeneous_cluster(self, scheme):
        cluster = ClusterSpec.paper_fig5_cluster(
            num_workers=50, num_fast=3, shift=5.0
        )
        _cross_validate(
            JobSpec(
                scheme=scheme,
                cluster=cluster,
                num_units=200,
                num_iterations=1,
                serialize_master_link=False,
            )
        )

    def test_exact_where_deterministic(self):
        # Deterministic workers and jitter-free transfers leave nothing to
        # approximate: analytic and simulated runs agree to float precision.
        cluster = ClusterSpec.homogeneous(
            10,
            DeterministicDelay(0.01),
            LinearCommunicationModel(latency=0.001, seconds_per_unit=0.002),
        )
        for scheme in ({"name": "uncoded"}, {"name": "cyclic-repetition", "load": 2}):
            for serialize in (False, True):
                spec = JobSpec(
                    scheme=scheme,
                    cluster=cluster,
                    num_units=10,
                    num_iterations=3,
                    serialize_master_link=serialize,
                )
                analytic = run(spec, backend="analytic")
                simulated = run(spec, backend="timing")
                assert analytic.total_time == pytest.approx(
                    simulated.total_time, rel=1e-9
                )
                assert analytic.average_recovery_threshold == pytest.approx(
                    simulated.average_recovery_threshold
                )

    def test_fig2_tradeoff_ordering_is_preserved(self):
        # The acceptance bar: the analytic backend reproduces the Fig. 2
        # ordering of the schemes' recovery thresholds at m = n = 100, r = 10
        # (lower bound < BCC < randomized < cyclic repetition < uncoded).
        cluster = ec2_like_cluster(100)
        thresholds = {}
        for scheme in (
            {"name": "bcc", "load": 10},
            {"name": "randomized", "load": 10},
            {"name": "cyclic-repetition", "load": 10},
            {"name": "uncoded"},
        ):
            spec = JobSpec(
                scheme=scheme,
                cluster=cluster,
                num_units=100,
                num_iterations=1,
                unit_size=100,
                serialize_master_link=False,
            )
            result = run(spec, backend="analytic")
            thresholds[scheme["name"]] = result.average_recovery_threshold
        assert 100 / 10 < thresholds["bcc"]
        assert thresholds["bcc"] < thresholds["randomized"]
        assert thresholds["randomized"] < thresholds["cyclic-repetition"]
        assert thresholds["cyclic-repetition"] < thresholds["uncoded"]
        assert thresholds["uncoded"] == pytest.approx(100.0)
