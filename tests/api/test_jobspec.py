"""Tests for the declarative JobSpec / Workload front door."""

import numpy as np
import pytest

from repro.api import JobSpec, Workload
from repro.cluster.spec import ClusterSpec
from repro.datasets.batching import make_batches
from repro.exceptions import ConfigurationError
from repro.gradients.logistic import LogisticLoss
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.schemes.bcc import BCCScheme
from repro.schemes.heterogeneous import GeneralizedBCCScheme
from repro.stragglers.models import ExponentialDelay


@pytest.fixture
def cluster() -> ClusterSpec:
    return ClusterSpec.homogeneous(8, ExponentialDelay(straggling=1.0))


@pytest.fixture
def workload(small_logistic_dataset, logistic_model) -> Workload:
    dataset, _ = small_logistic_dataset
    return Workload(
        model=logistic_model,
        dataset=dataset,
        optimizer=NesterovAcceleratedGradient(0.3),
        unit_spec=make_batches(dataset.num_examples, 10),
    )


class TestValidation:
    def test_rejects_non_positive_iterations(self, cluster):
        with pytest.raises(Exception):
            JobSpec(scheme="bcc", cluster=cluster, num_units=10, num_iterations=0)

    def test_rejects_num_units_conflicting_with_workload(self, cluster, workload):
        with pytest.raises(ConfigurationError, match="conflicts with the workload"):
            JobSpec(scheme="uncoded", cluster=cluster, num_units=99, workload=workload)

    def test_rejects_unit_size_conflicting_with_workload(self, cluster, workload):
        # A silent mismatch here would break the timing==semantic backend
        # equivalence (each backend would simulate different unit sizes).
        with pytest.raises(ConfigurationError, match="unit_size=7 conflicts"):
            JobSpec(scheme="uncoded", cluster=cluster, unit_size=7, workload=workload)

    def test_accepts_matching_num_units(self, cluster, workload):
        spec = JobSpec(
            scheme="uncoded",
            cluster=cluster,
            num_units=workload.num_units,
            workload=workload,
        )
        assert spec.resolved_num_units == workload.num_units


class TestResolution:
    def test_num_units_and_unit_size_derive_from_workload(self, cluster, workload):
        spec = JobSpec(scheme="uncoded", cluster=cluster, workload=workload)
        assert spec.resolved_num_units == workload.unit_spec.num_batches
        assert spec.resolved_unit_size == workload.unit_spec.max_batch_size

    def test_unit_size_defaults_to_one(self, cluster):
        spec = JobSpec(scheme="uncoded", cluster=cluster, num_units=10)
        assert spec.resolved_unit_size == 1

    def test_missing_num_units_raises(self, cluster):
        spec = JobSpec(scheme="uncoded", cluster=cluster)
        with pytest.raises(ConfigurationError, match="num_units"):
            spec.resolved_num_units

    def test_scheme_from_name_config_and_instance(self, cluster):
        by_name = JobSpec(scheme="uncoded", cluster=cluster, num_units=8)
        by_config = JobSpec(
            scheme={"name": "bcc", "load": 2}, cluster=cluster, num_units=8
        )
        instance = BCCScheme(2)
        by_instance = JobSpec(scheme=instance, cluster=cluster, num_units=8)
        assert by_name.resolve_scheme().name == "uncoded"
        assert by_config.resolve_scheme().load == 2
        assert by_instance.resolve_scheme() is instance

    def test_cluster_injected_into_heterogeneous_scheme(self, cluster):
        spec = JobSpec(
            scheme={"name": "generalized-bcc"}, cluster=cluster, num_units=20
        )
        scheme = spec.resolve_scheme()
        assert isinstance(scheme, GeneralizedBCCScheme)
        assert scheme.cluster is cluster

    def test_require_cluster_and_workload(self):
        spec = JobSpec(scheme="uncoded", num_units=4)
        with pytest.raises(ConfigurationError, match="cluster"):
            spec.require_cluster()
        with pytest.raises(ConfigurationError, match="workload"):
            spec.require_workload()


class TestOverrides:
    def test_field_override(self, cluster):
        spec = JobSpec(scheme="uncoded", cluster=cluster, num_units=8)
        updated = spec.with_overrides({"num_iterations": 7, "seed": 3})
        assert updated.num_iterations == 7
        assert updated.seed == 3
        assert spec.num_iterations == 1  # original untouched

    def test_scheme_replacement_then_dotted_update(self, cluster):
        spec = JobSpec(scheme="uncoded", cluster=cluster, num_units=8)
        updated = spec.with_overrides({"scheme": "bcc", "scheme.load": 4})
        assert updated.scheme == {"name": "bcc", "load": 4}
        assert updated.resolve_scheme().load == 4

    def test_dotted_update_on_config_mapping(self, cluster):
        spec = JobSpec(scheme={"name": "bcc", "load": 2}, cluster=cluster, num_units=8)
        assert spec.with_overrides({"scheme.load": 5}).resolve_scheme().load == 5

    def test_dotted_update_on_instance_rejected(self, cluster):
        spec = JobSpec(scheme=BCCScheme(2), cluster=cluster, num_units=8)
        with pytest.raises(ConfigurationError, match="instance"):
            spec.with_overrides({"scheme.load": 5})

    def test_unknown_key_rejected(self, cluster):
        spec = JobSpec(scheme="uncoded", cluster=cluster, num_units=8)
        with pytest.raises(ConfigurationError, match="unknown sweep parameter"):
            spec.with_overrides({"bogus": 1})


class TestSeeding:
    def test_rng_coerces_and_passes_generators_through(self):
        spec = JobSpec(scheme="uncoded", num_units=4, seed=5)
        a, b = spec.rng(), spec.rng()
        assert a.integers(0, 100) == b.integers(0, 100)
        shared = np.random.default_rng(0)
        assert JobSpec(scheme="uncoded", num_units=4, seed=shared).rng() is shared
