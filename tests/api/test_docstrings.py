"""Execute the doctested examples of the repro.api public surface.

The documentation site renders these docstrings verbatim (autodoc), so the
examples must actually run — this test keeps the rendered reference and the
code from drifting apart.
"""

from __future__ import annotations

import doctest

import repro.api.spec
import repro.api.sweep


def _run(module) -> doctest.TestResults:
    return doctest.testmod(module, verbose=False)


def test_jobspec_doctests_pass():
    results = _run(repro.api.spec)
    assert results.attempted > 0, "the JobSpec examples were not collected"
    assert results.failed == 0


def test_run_sweep_doctests_pass():
    results = _run(repro.api.sweep)
    assert results.attempted > 0, "the run_sweep examples were not collected"
    assert results.failed == 0
