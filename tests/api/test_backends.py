"""Tests for the execution backends and the unified RunResult."""

import numpy as np
import pytest

from repro.api import (
    JobSpec,
    MultiprocessBackend,
    RunResult,
    SemanticSimBackend,
    TimingSimBackend,
    Workload,
    available_backends,
    get_backend,
    run,
)
from repro.cluster.dynamic import DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.datasets.batching import make_batches
from repro.exceptions import ConfigurationError, SimulationError
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.stragglers.dynamics import WorkerProcess
from repro.stragglers.models import DeterministicDelay, ExponentialDelay


@pytest.fixture
def cluster() -> ClusterSpec:
    return ClusterSpec.homogeneous(10, ExponentialDelay(straggling=1.0))


@pytest.fixture
def workload(small_logistic_dataset, logistic_model) -> Workload:
    dataset, _ = small_logistic_dataset
    # 60 examples in batches of 5 -> 12 units, enough for the 10-worker
    # cluster's disjoint placements.
    return Workload(
        model=logistic_model,
        dataset=dataset,
        optimizer=NesterovAcceleratedGradient(0.3),
        unit_spec=make_batches(dataset.num_examples, 5),
    )


class TestDispatch:
    def test_names(self):
        assert available_backends() == ["analytic", "multiprocess", "semantic", "timing"]

    def test_get_backend_by_name_instance_and_callable(self):
        assert isinstance(get_backend("timing"), TimingSimBackend)
        backend = SemanticSimBackend()
        assert get_backend(backend) is backend

        def runner(spec):
            return RunResult(scheme_name="stub", backend="stub")

        adapted = get_backend(runner)
        assert adapted.run(None).scheme_name == "stub"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("quantum")


class TestTimingBackend:
    def test_runs_and_tags_result(self, cluster):
        spec = JobSpec(
            scheme={"name": "bcc", "load": 4},
            cluster=cluster,
            num_units=20,
            num_iterations=5,
            seed=0,
        )
        result = run(spec)
        assert isinstance(result, RunResult)
        assert result.backend == "timing"
        assert result.num_iterations == 5
        assert result.total_time > 0
        assert result.summary()["scheme"] == "bcc"

    def test_engine_knob_results_are_identical(self, cluster):
        spec = JobSpec(
            scheme={"name": "bcc", "load": 4},
            cluster=cluster,
            num_units=20,
            num_iterations=6,
            seed=11,
        )
        loop = TimingSimBackend(engine="loop").run(spec)
        vectorized = TimingSimBackend(engine="vectorized").run(spec)
        auto = TimingSimBackend().run(spec)
        assert loop.summary() == vectorized.summary() == auto.summary()

    def test_engine_via_backend_options_overrides_instance(self, cluster):
        base = JobSpec(
            scheme="uncoded",
            cluster=cluster,
            num_units=20,
            num_iterations=4,
            seed=2,
        )
        loop_backend = TimingSimBackend(engine="loop")
        plain = loop_backend.run(base)
        overridden = loop_backend.run(
            base.replace(backend_options={"engine": "vectorized"})
        )
        assert plain.summary() == overridden.summary()

    def test_unknown_engine_rejected(self, cluster):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            TimingSimBackend(engine="warp")
        spec = JobSpec(
            scheme="uncoded",
            cluster=cluster,
            num_units=10,
            num_iterations=2,
            backend_options={"engine": "warp"},
        )
        with pytest.raises(ConfigurationError, match="unknown engine"):
            TimingSimBackend().run(spec)

    def test_unknown_backend_option_rejected(self, cluster):
        spec = JobSpec(
            scheme="uncoded",
            cluster=cluster,
            num_units=10,
            num_iterations=2,
            backend_options={"warp_speed": True},
        )
        with pytest.raises(ConfigurationError, match="warp_speed"):
            TimingSimBackend().run(spec)

    def test_requires_cluster(self):
        spec = JobSpec(scheme="uncoded", num_units=10)
        with pytest.raises(ConfigurationError, match="cluster"):
            run(spec)

    def test_same_seed_same_result(self, cluster):
        spec = JobSpec(
            scheme={"name": "bcc", "load": 4},
            cluster=cluster,
            num_units=20,
            num_iterations=5,
            seed=42,
        )
        assert run(spec).summary() == run(spec).summary()


class TestBackendEquivalence:
    def test_timing_and_semantic_agree_on_timing_metrics(self, cluster, workload):
        """Same JobSpec + seed => identical timing on both simulation backends."""
        spec = JobSpec(
            scheme={"name": "bcc", "load": 2},
            cluster=cluster,
            num_iterations=6,
            seed=7,
            workload=workload,
        )
        timing = TimingSimBackend().run(spec)
        semantic = SemanticSimBackend().run(spec)

        assert timing.num_iterations == semantic.num_iterations
        for timed, trained in zip(timing.iterations, semantic.iterations):
            assert timed.total_time == trained.total_time
            assert timed.computation_time == trained.computation_time
            assert timed.workers_heard == trained.workers_heard
            assert timed.communication_load == trained.communication_load
        assert timing.summary()["total_time"] == semantic.summary()["total_time"]
        # Only the semantic run trains a model.
        assert timing.training is None
        assert semantic.training is not None
        losses = semantic.training.losses
        assert losses[-1] < losses[0]

    @pytest.mark.parametrize("name", ["uncoded", "ignore-stragglers"])
    def test_equivalence_for_parameterless_schemes(self, cluster, workload, name):
        spec = JobSpec(
            scheme=name, cluster=cluster, num_iterations=3, seed=3, workload=workload
        )
        timing = TimingSimBackend().run(spec)
        semantic = SemanticSimBackend().run(spec)
        assert timing.total_time == semantic.total_time

    def test_semantic_requires_workload(self, cluster):
        spec = JobSpec(scheme="uncoded", cluster=cluster, num_units=10)
        with pytest.raises(ConfigurationError, match="workload"):
            SemanticSimBackend().run(spec)


@pytest.mark.runtime
class TestMultiprocessBackend:
    def test_real_run_produces_unified_result(self, workload):
        spec = JobSpec(
            scheme={"name": "bcc", "load": 6},  # 12 units -> 2 batches, 3 workers
            num_iterations=3,
            seed=1,
            workload=workload,
            backend_options={"num_workers": 3},
        )
        result = run(spec, backend="multiprocess")
        assert result.backend == "multiprocess"
        assert result.num_iterations == 3
        assert len(result.iteration_times) == 3
        assert len(result.workers_heard) == 3
        assert result.total_seconds > 0
        # RunResult falls back to wall-clock aggregates when there are no
        # simulated iterations.
        assert result.total_time == result.total_seconds
        assert result.average_recovery_threshold == np.mean(result.workers_heard)
        summary = result.summary()
        assert summary["backend"] == "multiprocess"
        assert "final_loss" in summary

    def test_needs_workers_source(self, workload):
        spec = JobSpec(scheme="uncoded", num_iterations=1, workload=workload)
        with pytest.raises(ConfigurationError, match="num_workers"):
            MultiprocessBackend().run(spec)

    def test_rejects_unknown_option(self, workload):
        spec = JobSpec(
            scheme="uncoded",
            num_iterations=1,
            workload=workload,
            backend_options={"num_workers": 2, "warp_speed": True},
        )
        with pytest.raises(ConfigurationError, match="warp_speed"):
            MultiprocessBackend().run(spec)

    def test_accepts_injectable_dynamic_cluster(self, workload):
        """A registered-dynamics DynamicClusterSpec runs on real workers.

        The Markov process modulates computation speed but never vacates a
        slot, so even the uncoded scheme completes; the result carries the
        fault-injection evidence (fingerprint and scheduled-worker trace).
        """
        cluster = DynamicClusterSpec(
            ClusterSpec.homogeneous(3, DeterministicDelay(0.001)),
            dynamics={"name": "markov", "slowdown": 3.0, "p_slow": 0.3},
            seed=4,
        )
        spec = JobSpec(
            scheme="uncoded",
            cluster=cluster,
            num_iterations=2,
            seed=4,
            workload=workload,
        )
        result = run(spec, backend="multiprocess")
        assert result.num_iterations == 2
        assert len(str(result.extras["fault_fingerprint"])) == 64
        assert result.extras["fault_mode"] == "mute"
        assert result.extras["scheduled_workers"] == [3, 3]

    def test_rejects_unregistered_dynamics_by_name(self, workload):
        """The typed rejection names the offending process class."""

        class HomebrewProcess(WorkerProcess):
            def timeline(self, base, num_iterations, rng=None):
                return [base] * num_iterations

        cluster = DynamicClusterSpec(
            ClusterSpec.homogeneous(3, DeterministicDelay(0.001)),
            dynamics=HomebrewProcess(),
            seed=0,
        )
        spec = JobSpec(
            scheme="uncoded", cluster=cluster, num_iterations=1, workload=workload
        )
        with pytest.raises(ConfigurationError, match="HomebrewProcess"):
            MultiprocessBackend().run(spec)

    def test_rejects_unknown_fault_mode(self, workload):
        spec = JobSpec(
            scheme="uncoded",
            num_iterations=1,
            workload=workload,
            backend_options={"num_workers": 2, "fault_mode": "zombie"},
        )
        with pytest.raises(ConfigurationError, match="zombie"):
            MultiprocessBackend().run(spec)

    def test_straggle_delays_exclusive_with_dynamic_cluster(self, workload):
        cluster = DynamicClusterSpec(
            ClusterSpec.homogeneous(3, DeterministicDelay(0.001)),
            dynamics="markov",
            seed=0,
        )
        spec = JobSpec(
            scheme="uncoded",
            cluster=cluster,
            num_iterations=1,
            workload=workload,
            backend_options={"straggle_delays": [DeterministicDelay(0.0)] * 3},
        )
        with pytest.raises(ConfigurationError, match="cannot be combined"):
            MultiprocessBackend().run(spec)


class TestRunResult:
    def test_empty_result_raises_on_threshold(self):
        with pytest.raises(SimulationError):
            RunResult(scheme_name="x").average_recovery_threshold

    def test_to_table_renders_summary_and_extras(self, cluster):
        spec = JobSpec(
            scheme="uncoded", cluster=cluster, num_units=10, num_iterations=2, seed=0
        )
        result = run(spec)
        result.extras["note"] = "hello"
        rendered = result.to_table().render()
        assert "total_time" in rendered
        assert "hello" in rendered
