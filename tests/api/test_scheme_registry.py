"""Round-trip tests for the decorator-based scheme registry."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.schemes import (
    GeneralizedBCCScheme,
    LoadBalancedScheme,
    Scheme,
    available_schemes,
    get_scheme_class,
    make_scheme,
    register_scheme,
    scheme_accepts,
    scheme_from_config,
    scheme_registry,
)
from repro.schemes.registry import _REGISTRY
from repro.stragglers.models import ExponentialDelay

#: Constructor arguments making every registered scheme buildable on a
#: 12-unit / 12-worker job (the coded schemes need m == n, fractional
#: repetition needs load | n).
SCHEME_CONFIGS = {
    "bcc": {"load": 3},
    "uncoded": {},
    "randomized": {"load": 3},
    "cyclic-repetition": {"load": 3},
    "reed-solomon": {"load": 3},
    "fractional-repetition": {"load": 3},
    "ignore-stragglers": {"wait_fraction": 0.5},
    "generalized-bcc": {},
    "load-balanced": {},
}


@pytest.fixture
def cluster() -> ClusterSpec:
    return ClusterSpec.homogeneous(12, ExponentialDelay(straggling=1.0))


class TestRoundTrip:
    def test_config_table_covers_every_registered_scheme(self):
        assert sorted(SCHEME_CONFIGS) == available_schemes()

    @pytest.mark.parametrize("name", sorted(SCHEME_CONFIGS))
    def test_register_from_config_build_feasible_plan(self, name, cluster, rng):
        """register -> from_config -> build_feasible_plan for every scheme."""
        scheme = scheme_from_config(
            {"name": name, **SCHEME_CONFIGS[name]}, cluster=cluster
        )
        assert isinstance(scheme, get_scheme_class(name))
        assert scheme.name == name
        plan = scheme.build_feasible_plan(12, 12, rng)
        assert plan.scheme_name == name
        assert plan.num_workers == 12
        assert plan.can_ever_complete()

    def test_heterogeneous_schemes_pick_up_the_cluster(self, cluster):
        generalized = scheme_from_config("generalized-bcc", cluster=cluster)
        balanced = scheme_from_config({"name": "load-balanced"}, cluster=cluster)
        assert generalized.cluster is cluster
        assert balanced.cluster is cluster
        assert generalized.resolve_loads(20, 12).sum() >= 20
        assert balanced.resolve_loads(20, 12).sum() == 20

    def test_explicit_loads_suppress_cluster_injection(self, cluster):
        scheme = scheme_from_config(
            {"name": "generalized-bcc", "loads": [2] * 12}, cluster=cluster
        )
        assert scheme.cluster is None
        np.testing.assert_array_equal(scheme.resolve_loads(12, 12), [2] * 12)

    def test_homogeneous_schemes_ignore_the_ambient_cluster(self, cluster):
        scheme = scheme_from_config({"name": "bcc", "load": 2}, cluster=cluster)
        assert scheme.load == 2


class TestStrictness:
    def test_inapplicable_kwargs_raise(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            scheme_from_config({"name": "uncoded", "load": 3})
        with pytest.raises(ConfigurationError, match="does not accept"):
            scheme_from_config({"name": "ignore-stragglers", "load": 3})
        with pytest.raises(ConfigurationError, match="does not accept"):
            scheme_from_config({"name": "bcc", "laod": 3})  # typo'd key

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            scheme_from_config("mystery")

    def test_mismatched_name_key_raises(self):
        from repro.schemes.bcc import BCCScheme

        with pytest.raises(ConfigurationError, match="routed"):
            BCCScheme.from_config({"name": "uncoded", "load": 2})

    def test_instance_passthrough_rejects_overrides(self):
        scheme = make_scheme("bcc", load=2)
        assert scheme_from_config(scheme) is scheme
        with pytest.raises(ConfigurationError, match="overrides"):
            scheme_from_config(scheme, load=5)

    def test_scheme_accepts(self):
        assert scheme_accepts("bcc", "load")
        assert not scheme_accepts("uncoded", "load")
        assert scheme_accepts("cyclic-repetition", "check_every")


class TestLegacyShims:
    def test_make_scheme_emits_deprecation_pointing_at_the_docs(self):
        with pytest.warns(DeprecationWarning, match=r"docs/registry\.rst"):
            scheme = make_scheme("bcc", load=2)
        assert scheme.name == "bcc"

    def test_scheme_registry_emits_deprecation_pointing_at_the_docs(self):
        with pytest.warns(DeprecationWarning, match="scheme_from_config"):
            registry = scheme_registry()
        assert "bcc" in registry

    def test_make_scheme_warns_on_ignored_load(self):
        with pytest.warns(UserWarning, match="ignoring load"):
            scheme = make_scheme("uncoded", load=9)
        assert scheme.name == "uncoded"

    def test_make_scheme_builds_heterogeneous_schemes(self, cluster):
        assert isinstance(
            make_scheme("generalized-bcc", cluster=cluster), GeneralizedBCCScheme
        )
        assert isinstance(
            make_scheme("load-balanced", loads=[1] * 11 + [9]), LoadBalancedScheme
        )


class TestRegistration:
    def test_conflicting_registration_raises(self):
        @register_scheme("temp-test-scheme")
        class TempScheme(Scheme):
            name = "temp-test-scheme"

            def build_plan(self, num_units, num_workers, rng=None):
                raise NotImplementedError

        try:
            with pytest.raises(ConfigurationError, match="already registered"):

                @register_scheme("temp-test-scheme")
                class Clash(Scheme):
                    name = "temp-test-scheme"

                    def build_plan(self, num_units, num_workers, rng=None):
                        raise NotImplementedError

            # Re-decorating the same class is harmless (module reloads).
            assert register_scheme("temp-test-scheme")(TempScheme) is TempScheme
        finally:
            _REGISTRY.pop("temp-test-scheme", None)
