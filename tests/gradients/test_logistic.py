"""Tests for the logistic-regression loss."""

import numpy as np
import pytest

from repro.gradients.logistic import LogisticLoss, _log1pexp, _sigmoid


class TestNumericalStability:
    def test_log1pexp_extremes(self):
        values = np.array([-1000.0, -10.0, 0.0, 10.0, 1000.0])
        result = _log1pexp(values)
        assert np.all(np.isfinite(result))
        # For large positive z, log(1+e^z) ~ z.
        assert result[-1] == pytest.approx(1000.0)
        # For large negative z, log(1+e^z) ~ 0.
        assert result[0] == pytest.approx(0.0, abs=1e-12)

    def test_sigmoid_extremes(self):
        values = np.array([-1000.0, 0.0, 1000.0])
        result = _sigmoid(values)
        assert np.all(np.isfinite(result))
        assert result[0] == pytest.approx(0.0, abs=1e-12)
        assert result[1] == pytest.approx(0.5)
        assert result[2] == pytest.approx(1.0)

    def test_loss_finite_for_extreme_margins(self):
        model = LogisticLoss()
        features = np.array([[1000.0], [-1000.0]])
        labels = np.array([1.0, 1.0])
        weights = np.array([1.0])
        losses = model.loss_per_example(weights, features, labels)
        assert np.all(np.isfinite(losses))


class TestSemantics:
    def test_zero_weights_loss_is_log2(self):
        model = LogisticLoss()
        features = np.random.default_rng(0).standard_normal((10, 3))
        labels = np.ones(10)
        assert model.loss(np.zeros(3), features, labels) == pytest.approx(np.log(2.0))

    def test_correct_classification_reduces_loss(self):
        model = LogisticLoss()
        features = np.array([[1.0, 0.0]])
        labels = np.array([1.0])
        aligned = model.loss(np.array([5.0, 0.0]), features, labels)
        opposed = model.loss(np.array([-5.0, 0.0]), features, labels)
        assert aligned < opposed

    def test_predict_signs(self):
        model = LogisticLoss()
        weights = np.array([1.0, -1.0])
        features = np.array([[2.0, 0.0], [0.0, 2.0]])
        np.testing.assert_array_equal(model.predict(weights, features), [1.0, -1.0])

    def test_predict_proba_bounds_and_monotonicity(self):
        model = LogisticLoss()
        weights = np.array([1.0])
        features = np.array([[-3.0], [0.0], [3.0]])
        probabilities = model.predict_proba(weights, features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))
        assert probabilities[0] < probabilities[1] < probabilities[2]

    def test_l2_regularisation_increases_loss_and_changes_gradient(self):
        rng = np.random.default_rng(1)
        features = rng.standard_normal((8, 4))
        labels = rng.choice([-1.0, 1.0], size=8)
        weights = rng.standard_normal(4)
        plain, regularised = LogisticLoss(), LogisticLoss(l2=1.0)
        assert regularised.loss(weights, features, labels) > plain.loss(
            weights, features, labels
        )
        expected = plain.gradient_sum(weights, features, labels) + 8 * 1.0 * weights
        np.testing.assert_allclose(
            regularised.gradient_sum(weights, features, labels), expected
        )

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LogisticLoss(l2=-0.1)

    def test_name(self):
        assert LogisticLoss().name == "logistic"
