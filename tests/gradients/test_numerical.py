"""Finite-difference checks: every model's gradients match its loss."""

import numpy as np
import pytest

from repro.gradients.huber import HuberLoss
from repro.gradients.least_squares import LeastSquaresLoss, RidgeLoss
from repro.gradients.logistic import LogisticLoss
from repro.gradients.softmax import SoftmaxLoss


def finite_difference_gradient(function, point, epsilon=1e-6):
    """Central finite differences of a scalar function."""
    gradient = np.zeros_like(point)
    for index in range(point.size):
        shift = np.zeros_like(point)
        shift[index] = epsilon
        gradient[index] = (function(point + shift) - function(point - shift)) / (
            2 * epsilon
        )
    return gradient


def _binary_problem(rng, num_examples=12, num_features=5):
    features = rng.standard_normal((num_examples, num_features))
    labels = rng.choice([-1.0, 1.0], size=num_examples)
    weights = rng.standard_normal(num_features) * 0.5
    return features, labels, weights


def _regression_problem(rng, num_examples=12, num_features=5):
    features = rng.standard_normal((num_examples, num_features))
    labels = rng.standard_normal(num_examples)
    weights = rng.standard_normal(num_features) * 0.5
    return features, labels, weights


@pytest.mark.parametrize(
    "model",
    [
        LogisticLoss(),
        LogisticLoss(l2=0.1),
        LeastSquaresLoss(),
        RidgeLoss(l2=0.05),
        HuberLoss(delta=0.7),
    ],
    ids=lambda model: repr(model),
)
def test_mean_gradient_matches_finite_differences(model, rng):
    if isinstance(model, (LeastSquaresLoss, HuberLoss)) and not isinstance(
        model, LogisticLoss
    ):
        features, labels, weights = _regression_problem(rng)
    else:
        features, labels, weights = _binary_problem(rng)

    def objective(point):
        return model.loss(point, features, labels)

    analytic = model.gradient(weights, features, labels)
    numeric = finite_difference_gradient(objective, weights)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


def test_softmax_gradient_matches_finite_differences(rng):
    num_classes, num_features, num_examples = 3, 4, 15
    model = SoftmaxLoss(num_classes=num_classes)
    features = rng.standard_normal((num_examples, num_features))
    labels = rng.integers(0, num_classes, size=num_examples).astype(float)
    weights = rng.standard_normal(num_classes * num_features) * 0.3

    def objective(point):
        return model.loss(point, features, labels)

    analytic = model.gradient(weights, features, labels)
    numeric = finite_difference_gradient(objective, weights)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


@pytest.mark.parametrize(
    "model",
    [LogisticLoss(), LogisticLoss(l2=0.2), LeastSquaresLoss(), RidgeLoss(l2=0.1), HuberLoss()],
    ids=lambda model: repr(model),
)
def test_gradient_sum_equals_sum_of_per_example_gradients(model, rng):
    features, labels, weights = _binary_problem(rng)
    per_example = model.per_example_gradients(weights, features, labels)
    fused = model.gradient_sum(weights, features, labels)
    np.testing.assert_allclose(per_example.sum(axis=0), fused, rtol=1e-10, atol=1e-10)


def test_softmax_gradient_sum_equals_per_example_sum(rng):
    model = SoftmaxLoss(num_classes=4)
    features = rng.standard_normal((10, 3))
    labels = rng.integers(0, 4, size=10).astype(float)
    weights = rng.standard_normal(12)
    per_example = model.per_example_gradients(weights, features, labels)
    np.testing.assert_allclose(
        per_example.sum(axis=0),
        model.gradient_sum(weights, features, labels),
        rtol=1e-10,
        atol=1e-10,
    )
