"""Tests for the least-squares and ridge losses."""

import numpy as np
import pytest

from repro.gradients.least_squares import LeastSquaresLoss, RidgeLoss


class TestLeastSquares:
    def test_zero_residual_zero_loss(self):
        model = LeastSquaresLoss()
        features = np.array([[1.0, 2.0], [3.0, 4.0]])
        weights = np.array([1.0, -1.0])
        labels = features @ weights
        assert model.loss(weights, features, labels) == pytest.approx(0.0)
        np.testing.assert_allclose(
            model.gradient(weights, features, labels), np.zeros(2), atol=1e-12
        )

    def test_gradient_formula(self):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((6, 3))
        labels = rng.standard_normal(6)
        weights = rng.standard_normal(3)
        expected = features.T @ (features @ weights - labels)
        np.testing.assert_allclose(
            LeastSquaresLoss().gradient_sum(weights, features, labels), expected
        )

    def test_exact_solution_minimises_gradient(self):
        rng = np.random.default_rng(1)
        features = rng.standard_normal((20, 4))
        labels = rng.standard_normal(20)
        model = LeastSquaresLoss()
        solution = model.exact_solution(features, labels)
        gradient = model.gradient(solution, features, labels)
        np.testing.assert_allclose(gradient, np.zeros(4), atol=1e-8)

    def test_predict_is_linear(self):
        model = LeastSquaresLoss()
        weights = np.array([2.0, -1.0])
        features = np.array([[1.0, 1.0]])
        assert model.predict(weights, features)[0] == pytest.approx(1.0)


class TestRidge:
    def test_reduces_to_least_squares_when_l2_zero(self):
        rng = np.random.default_rng(2)
        features = rng.standard_normal((5, 3))
        labels = rng.standard_normal(5)
        weights = rng.standard_normal(3)
        np.testing.assert_allclose(
            RidgeLoss(l2=0.0).gradient_sum(weights, features, labels),
            LeastSquaresLoss().gradient_sum(weights, features, labels),
        )

    def test_exact_solution_has_zero_gradient(self):
        rng = np.random.default_rng(3)
        features = rng.standard_normal((30, 5))
        labels = rng.standard_normal(30)
        model = RidgeLoss(l2=0.1)
        solution = model.exact_solution(features, labels)
        np.testing.assert_allclose(
            model.gradient(solution, features, labels), np.zeros(5), atol=1e-8
        )

    def test_ridge_shrinks_solution(self):
        rng = np.random.default_rng(4)
        features = rng.standard_normal((30, 5))
        labels = rng.standard_normal(30)
        ls_solution = LeastSquaresLoss().exact_solution(features, labels)
        ridge_solution = RidgeLoss(l2=10.0).exact_solution(features, labels)
        assert np.linalg.norm(ridge_solution) < np.linalg.norm(ls_solution)

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            RidgeLoss(l2=-1.0)

    def test_names(self):
        assert LeastSquaresLoss().name == "least-squares"
        assert RidgeLoss().name == "ridge"
