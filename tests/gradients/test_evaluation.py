"""Tests for repro.gradients.evaluation helpers."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.gradients.evaluation import (
    classification_error,
    empirical_risk,
    full_gradient,
    per_example_gradients,
    summed_partial_gradient,
)
from repro.gradients.least_squares import LeastSquaresLoss
from repro.gradients.logistic import LogisticLoss


@pytest.fixture
def dataset(rng):
    features = rng.standard_normal((20, 4))
    labels = rng.choice([-1.0, 1.0], size=20)
    return Dataset(features, labels)


class TestEvaluationHelpers:
    def test_full_gradient_matches_model(self, dataset, rng):
        model = LogisticLoss()
        weights = rng.standard_normal(4)
        expected = model.gradient(weights, dataset.features, dataset.labels)
        np.testing.assert_allclose(full_gradient(model, dataset, weights), expected)

    def test_summed_partial_gradient_over_subset(self, dataset, rng):
        model = LogisticLoss()
        weights = rng.standard_normal(4)
        indices = [0, 3, 7]
        expected = model.per_example_gradients(
            weights, dataset.features[indices], dataset.labels[indices]
        ).sum(axis=0)
        np.testing.assert_allclose(
            summed_partial_gradient(model, dataset, weights, indices), expected
        )

    def test_partial_gradients_compose_to_full_gradient(self, dataset, rng):
        # The defining identity of distributed GD: summing the partial
        # gradients over a partition of the examples recovers m * gradient.
        model = LogisticLoss()
        weights = rng.standard_normal(4)
        parts = [range(0, 7), range(7, 15), range(15, 20)]
        total = sum(
            summed_partial_gradient(model, dataset, weights, list(part)) for part in parts
        )
        np.testing.assert_allclose(
            total / dataset.num_examples, full_gradient(model, dataset, weights)
        )

    def test_per_example_gradients_shape(self, dataset, rng):
        model = LogisticLoss()
        weights = rng.standard_normal(4)
        assert per_example_gradients(model, dataset, weights).shape == (20, 4)
        assert per_example_gradients(model, dataset, weights, [1, 2]).shape == (2, 4)

    def test_empirical_risk(self, dataset):
        model = LogisticLoss()
        assert empirical_risk(model, dataset, np.zeros(4)) == pytest.approx(np.log(2))

    def test_classification_error_perfect_and_random(self, rng):
        model = LogisticLoss()
        features = np.array([[1.0, 0.0], [-1.0, 0.0]])
        labels = np.array([1.0, -1.0])
        dataset = Dataset(features, labels)
        assert classification_error(model, dataset, np.array([1.0, 0.0])) == 0.0
        assert classification_error(model, dataset, np.array([-1.0, 0.0])) == 1.0

    def test_classification_error_requires_predict(self, dataset):
        class NoPredict(LeastSquaresLoss):
            def predict(self, weights, features):
                return None

        with pytest.raises(ValueError):
            classification_error(NoPredict(), dataset, np.zeros(4))
