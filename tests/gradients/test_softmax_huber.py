"""Tests for the softmax and Huber losses."""

import numpy as np
import pytest

from repro.gradients.huber import HuberLoss
from repro.gradients.softmax import SoftmaxLoss


class TestSoftmax:
    def test_requires_at_least_two_classes(self):
        with pytest.raises(ValueError):
            SoftmaxLoss(num_classes=1)

    def test_initial_weights_length(self):
        model = SoftmaxLoss(num_classes=3)
        assert model.initial_weights(5).shape == (15,)

    def test_uniform_loss_at_zero_weights(self):
        model = SoftmaxLoss(num_classes=4)
        features = np.random.default_rng(0).standard_normal((10, 3))
        labels = np.zeros(10)
        assert model.loss(np.zeros(12), features, labels) == pytest.approx(np.log(4.0))

    def test_wrong_weight_length_rejected(self):
        model = SoftmaxLoss(num_classes=3)
        with pytest.raises(ValueError):
            model.loss(np.zeros(10), np.zeros((2, 3)), np.zeros(2))

    def test_out_of_range_labels_rejected(self):
        model = SoftmaxLoss(num_classes=2)
        with pytest.raises(ValueError):
            model.gradient_sum(np.zeros(4), np.zeros((2, 2)), np.array([0.0, 2.0]))

    def test_predict_returns_class_indices(self):
        model = SoftmaxLoss(num_classes=3)
        rng = np.random.default_rng(1)
        weights = rng.standard_normal(3 * 2)
        features = rng.standard_normal((7, 2))
        predictions = model.predict(weights, features)
        assert predictions.shape == (7,)
        assert set(np.unique(predictions)).issubset({0.0, 1.0, 2.0})

    def test_training_signal_points_toward_correct_class(self):
        # One gradient step from zero weights should increase the probability
        # of the true class for a single-example problem.
        model = SoftmaxLoss(num_classes=3)
        features = np.array([[1.0, 2.0]])
        labels = np.array([2.0])
        weights = np.zeros(6)
        gradient = model.gradient(weights, features, labels)
        updated = weights - 0.5 * gradient
        before = model.loss(weights, features, labels)
        after = model.loss(updated, features, labels)
        assert after < before

    def test_name_includes_classes(self):
        assert SoftmaxLoss(num_classes=5).name == "softmax-5"


class TestHuber:
    def test_quadratic_region_matches_least_squares(self):
        model = HuberLoss(delta=10.0)
        features = np.array([[1.0], [2.0]])
        labels = np.array([0.5, 1.0])
        weights = np.array([0.6])
        residuals = features @ weights - labels
        expected = 0.5 * residuals**2
        np.testing.assert_allclose(
            model.loss_per_example(weights, features, labels), expected
        )

    def test_linear_region_slope_is_delta(self):
        model = HuberLoss(delta=1.0)
        features = np.array([[1.0]])
        labels = np.array([0.0])
        gradient_large = model.gradient_sum(np.array([10.0]), features, labels)
        gradient_larger = model.gradient_sum(np.array([20.0]), features, labels)
        # In the linear region the gradient is constant (= delta * x).
        np.testing.assert_allclose(gradient_large, gradient_larger)
        np.testing.assert_allclose(gradient_large, [1.0])

    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)

    def test_loss_continuous_at_transition(self):
        model = HuberLoss(delta=1.0)
        features = np.array([[1.0]])
        labels = np.array([0.0])
        just_below = model.loss(np.array([1.0 - 1e-9]), features, labels)
        just_above = model.loss(np.array([1.0 + 1e-9]), features, labels)
        assert just_below == pytest.approx(just_above, abs=1e-6)

    def test_predict(self):
        model = HuberLoss()
        assert model.predict(np.array([2.0]), np.array([[3.0]]))[0] == pytest.approx(6.0)
