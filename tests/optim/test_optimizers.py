"""Tests for the optimizer update rules."""

import numpy as np
import pytest

from repro.optim.base import OptimizerState
from repro.optim.gradient_descent import GradientDescent
from repro.optim.momentum import HeavyBallMomentum
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.optim.schedules import ConstantSchedule


def quadratic(weights):
    """A simple strongly convex quadratic 0.5 ||w - 1||^2."""
    return 0.5 * float(np.sum((weights - 1.0) ** 2))


def quadratic_gradient(weights):
    return weights - 1.0


def run_optimizer(optimizer, iterations=200, dim=5):
    state = optimizer.initialize(np.zeros(dim))
    for _ in range(iterations):
        gradient = quadratic_gradient(optimizer.query_point(state))
        state = optimizer.step(state, gradient)
    return state.weights


class TestOptimizerBase:
    def test_float_schedule_accepted(self):
        optimizer = GradientDescent(0.1)
        assert isinstance(optimizer.schedule, ConstantSchedule)

    def test_invalid_schedule_type(self):
        with pytest.raises(TypeError):
            GradientDescent("fast")

    def test_initialize_copies_weights(self):
        weights = np.ones(3)
        state = GradientDescent(0.1).initialize(weights)
        state.weights[0] = 99.0
        assert weights[0] == 1.0

    def test_initialize_rejects_matrix(self):
        with pytest.raises(ValueError):
            GradientDescent(0.1).initialize(np.zeros((2, 2)))

    def test_state_copy_is_deep(self):
        state = OptimizerState(weights=np.zeros(2), auxiliary=np.ones(2))
        clone = state.copy()
        clone.weights[0] = 5.0
        clone.auxiliary[0] = 5.0
        assert state.weights[0] == 0.0
        assert state.auxiliary[0] == 1.0


class TestGradientDescent:
    def test_single_step_formula(self):
        optimizer = GradientDescent(0.5)
        state = optimizer.initialize(np.array([0.0]))
        new_state = optimizer.step(state, np.array([2.0]))
        assert new_state.weights[0] == pytest.approx(-1.0)
        assert new_state.iteration == 1

    def test_converges_on_quadratic(self):
        final = run_optimizer(GradientDescent(0.5))
        np.testing.assert_allclose(final, np.ones(5), atol=1e-6)

    def test_query_point_is_current_iterate(self):
        optimizer = GradientDescent(0.1)
        state = optimizer.initialize(np.array([3.0]))
        np.testing.assert_array_equal(optimizer.query_point(state), [3.0])


class TestNesterov:
    def test_converges_on_quadratic(self):
        final = run_optimizer(NesterovAcceleratedGradient(0.5))
        np.testing.assert_allclose(final, np.ones(5), atol=1e-6)

    def test_faster_than_gd_on_ill_conditioned_quadratic(self):
        # Minimise 0.5 * w^T diag(1, 100) w; measure suboptimality after a
        # fixed number of iterations with the safe step 1/L.
        scales = np.array([1.0, 100.0])

        def gradient(weights):
            return scales * weights

        def objective(weights):
            return 0.5 * float(np.sum(scales * weights**2))

        def run(optimizer, iterations=100):
            state = optimizer.initialize(np.array([1.0, 1.0]))
            for _ in range(iterations):
                state = optimizer.step(state, gradient(optimizer.query_point(state)))
            return objective(state.weights)

        gd_value = run(GradientDescent(1.0 / 100.0))
        nesterov_value = run(NesterovAcceleratedGradient(1.0 / 100.0))
        assert nesterov_value < gd_value

    def test_query_point_uses_lookahead_after_first_step(self):
        optimizer = NesterovAcceleratedGradient(0.1)
        state = optimizer.initialize(np.array([1.0]))
        np.testing.assert_array_equal(optimizer.query_point(state), [1.0])
        state = optimizer.step(state, np.array([1.0]))
        assert state.auxiliary is not None
        np.testing.assert_array_equal(optimizer.query_point(state), state.auxiliary)

    def test_fixed_momentum_validation(self):
        with pytest.raises(ValueError):
            NesterovAcceleratedGradient(0.1, momentum=1.0)
        with pytest.raises(ValueError):
            NesterovAcceleratedGradient(0.1, momentum=-0.1)
        assert NesterovAcceleratedGradient(0.1, momentum=0.9).momentum == 0.9


class TestHeavyBall:
    def test_converges_on_quadratic(self):
        final = run_optimizer(HeavyBallMomentum(0.2, momentum=0.5))
        np.testing.assert_allclose(final, np.ones(5), atol=1e-6)

    def test_velocity_accumulates(self):
        optimizer = HeavyBallMomentum(1.0, momentum=0.5)
        state = optimizer.initialize(np.array([0.0]))
        state = optimizer.step(state, np.array([1.0]))
        assert state.weights[0] == pytest.approx(-1.0)
        state = optimizer.step(state, np.array([1.0]))
        # velocity = 0.5 * (-1) - 1 = -1.5 -> weights = -2.5
        assert state.weights[0] == pytest.approx(-2.5)

    def test_momentum_bounds(self):
        with pytest.raises(ValueError):
            HeavyBallMomentum(0.1, momentum=1.0)
