"""Tests for learning-rate schedules."""

import pytest

from repro.optim.schedules import (
    ConstantSchedule,
    InverseTimeDecay,
    PolynomialDecay,
    StepDecay,
)


class TestConstantSchedule:
    def test_constant_value(self):
        schedule = ConstantSchedule(0.3)
        assert schedule(0) == 0.3
        assert schedule(100) == 0.3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)
        with pytest.raises(ValueError):
            ConstantSchedule(-1.0)

    def test_rejects_negative_iteration(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.1)(-1)


class TestInverseTimeDecay:
    def test_decreasing(self):
        schedule = InverseTimeDecay(initial=1.0, decay=0.1)
        values = [schedule(t) for t in range(10)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[0] == 1.0

    def test_zero_decay_is_constant(self):
        schedule = InverseTimeDecay(initial=0.5, decay=0.0)
        assert schedule(1000) == 0.5

    def test_formula(self):
        schedule = InverseTimeDecay(initial=1.0, decay=1.0)
        assert schedule(4) == pytest.approx(0.2)


class TestStepDecay:
    def test_steps(self):
        schedule = StepDecay(initial=1.0, factor=0.5, period=10)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_factor_bounds(self):
        with pytest.raises(ValueError):
            StepDecay(initial=1.0, factor=1.5)
        with pytest.raises(ValueError):
            StepDecay(initial=1.0, factor=-0.1)


class TestPolynomialDecay:
    def test_formula(self):
        schedule = PolynomialDecay(initial=1.0, power=1.0)
        assert schedule(0) == 1.0
        assert schedule(9) == pytest.approx(0.1)

    def test_sqrt_decay(self):
        schedule = PolynomialDecay(initial=1.0, power=0.5)
        assert schedule(3) == pytest.approx(0.5)

    def test_power_zero_is_constant(self):
        schedule = PolynomialDecay(initial=0.7, power=0.0)
        assert schedule(50) == pytest.approx(0.7)
