"""Tests for the centralized training loop."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_linear_regression_data, make_separable_classification_data
from repro.gradients.least_squares import LeastSquaresLoss
from repro.gradients.logistic import LogisticLoss
from repro.optim.gradient_descent import GradientDescent
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.optim.trainer import train


class TestTrain:
    def test_least_squares_converges_to_exact_solution(self):
        dataset, _ = make_linear_regression_data(50, 4, noise_std=0.1, seed=0)
        model = LeastSquaresLoss()
        result = train(
            model, dataset, GradientDescent(0.5), num_iterations=2000
        )
        exact = model.exact_solution(dataset.features, dataset.labels)
        np.testing.assert_allclose(result.weights, exact, atol=1e-3)

    def test_loss_decreases_for_logistic_regression(self):
        dataset, _ = make_separable_classification_data(80, 6, margin=1.0, seed=1)
        result = train(
            LogisticLoss(), dataset, NesterovAcceleratedGradient(0.1), num_iterations=60
        )
        assert result.losses[-1] < result.losses[0]
        assert result.num_iterations == 60

    def test_history_fields(self):
        dataset, _ = make_linear_regression_data(20, 3, seed=2)
        result = train(LeastSquaresLoss(), dataset, GradientDescent(0.01), 5)
        record = result.history[0]
        assert record.iteration == 0
        assert record.learning_rate == pytest.approx(0.01)
        assert record.gradient_norm > 0

    def test_gradient_tolerance_stops_early(self):
        dataset, _ = make_linear_regression_data(30, 3, noise_std=0.0, seed=3)
        result = train(
            LeastSquaresLoss(),
            dataset,
            GradientDescent(0.05),
            num_iterations=10_000,
            gradient_tolerance=1e-6,
        )
        assert result.converged
        assert result.num_iterations < 10_000

    def test_custom_oracle_is_used(self):
        dataset, _ = make_linear_regression_data(10, 2, seed=4)
        calls = []

        def oracle(query, iteration):
            calls.append(iteration)
            return np.zeros(2)

        result = train(
            LeastSquaresLoss(),
            dataset,
            GradientDescent(0.1),
            num_iterations=3,
            gradient_oracle=oracle,
        )
        assert calls == [0, 1, 2]
        # Zero gradients mean the weights never move.
        np.testing.assert_array_equal(result.weights, np.zeros(2))

    def test_oracle_shape_mismatch_raises(self):
        dataset, _ = make_linear_regression_data(10, 2, seed=5)
        with pytest.raises(ValueError):
            train(
                LeastSquaresLoss(),
                dataset,
                GradientDescent(0.1),
                num_iterations=1,
                gradient_oracle=lambda query, iteration: np.zeros(3),
            )

    def test_initial_weights_respected(self):
        dataset, _ = make_linear_regression_data(10, 2, seed=6)
        start = np.array([5.0, -5.0])
        result = train(
            LeastSquaresLoss(),
            dataset,
            GradientDescent(1e-9),
            num_iterations=1,
            initial_weights=start,
        )
        np.testing.assert_allclose(result.weights, start, atol=1e-6)

    def test_final_loss_requires_history(self):
        from repro.optim.trainer import TrainingResult

        with pytest.raises(ValueError):
            TrainingResult(weights=np.zeros(1)).final_loss

    def test_invalid_iteration_count(self):
        dataset, _ = make_linear_regression_data(10, 2, seed=7)
        with pytest.raises((ValueError, TypeError)):
            train(LeastSquaresLoss(), dataset, GradientDescent(0.1), 0)
