"""Cache correctness: identical records on hit, content-sensitive keys.

The contract under test (see ``docs/service.rst``):

* a cache hit returns a record equal to what the first execution produced
  — within a process *and* through the disk tier;
* the fingerprint changes when any spec field changes (so a hit can never
  serve a different configuration's result);
* corrupted disk entries are recomputed, never trusted;
* uncacheable specs (live-generator seeds, custom runner backends) are
  computed normally, not keyed unsafely.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.api.backends import get_backend
from repro.api.fingerprint import canonical_value, fingerprint_spec
from repro.cluster.spec import ClusterSpec
from repro.exceptions import FingerprintError
from repro.scheduling import build_sweep_plan
from repro.service import ResultCache
from repro.stragglers.models import DeterministicDelay, ShiftedExponentialDelay


def make_spec(**overrides):
    cluster = ClusterSpec.homogeneous(8, ShiftedExponentialDelay(1.0, 0.5))
    spec = JobSpec(
        scheme={"name": "bcc", "load": 4},
        cluster=cluster,
        num_units=16,
        num_iterations=3,
        seed=0,
    )
    return spec.replace(**overrides) if overrides else spec


def make_sweep(spec=None, trials=2):
    return Sweep(
        spec or make_spec(),
        parameters={"scheme.load": [4, 8]},
        trials=trials,
        backend=TimingSimBackend(engine="auto"),
    )


def records_of(result):
    return [(r.cell, r.trial, r.result) for r in result]


class TestFingerprint:
    def test_equal_configurations_fingerprint_equally(self):
        assert make_spec().fingerprint() == make_spec().fingerprint()

    def test_construction_order_is_irrelevant(self):
        a = make_spec(scheme={"name": "bcc", "load": 4})
        b = make_spec(scheme={"load": 4, "name": "bcc"})
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "changes",
        [
            {"seed": 1},
            {"num_iterations": 4},
            {"num_units": 17},
            {"serialize_master_link": False},
            {"unit_size": 7},
            {"scheme": {"name": "bcc", "load": 5}},
            {"scheme": {"name": "uncoded"}},
            {"backend_options": {"engine": "loop"}},
            {"cluster": ClusterSpec.homogeneous(8, ShiftedExponentialDelay(1.0, 0.6))},
            {"cluster": ClusterSpec.homogeneous(8, DeterministicDelay(0.5))},
            {"cluster": ClusterSpec.homogeneous(9, ShiftedExponentialDelay(1.0, 0.5))},
        ],
    )
    def test_every_field_change_changes_the_fingerprint(self, changes):
        assert make_spec().fingerprint() != make_spec(**changes).fingerprint()

    def test_backend_identity_is_part_of_the_key(self):
        spec = make_spec()
        vector = spec.fingerprint(backend=TimingSimBackend(engine="vectorized"))
        loop = spec.fingerprint(backend=TimingSimBackend(engine="loop"))
        analytic = spec.fingerprint(backend=get_backend("analytic"))
        assert len({vector, loop, analytic}) == 3

    def test_seed_sequence_fingerprints_by_entropy_and_spawn_key(self):
        children = np.random.SeedSequence(7).spawn(2)
        a = make_spec(seed=children[0]).fingerprint()
        b = make_spec(seed=children[1]).fingerprint()
        again = make_spec(seed=np.random.SeedSequence(7).spawn(2)[0]).fingerprint()
        assert a != b
        assert a == again

    def test_live_generator_is_uncacheable(self):
        with pytest.raises(FingerprintError, match="generator"):
            make_spec(seed=np.random.default_rng(0)).fingerprint()

    def test_callable_is_uncacheable(self):
        with pytest.raises(FingerprintError, match="callable"):
            canonical_value(lambda spec: spec)

    def test_canonical_form_round_trips_through_json(self):
        form = canonical_value(make_spec())
        assert json.loads(json.dumps(form)) == form

    def test_fingerprint_survives_config_round_trip(self):
        scheme = {"name": "bcc", "load": 4}
        a = make_spec(scheme=scheme).fingerprint()
        b = make_spec(scheme=json.loads(json.dumps(scheme))).fingerprint()
        assert a == b

    def test_module_level_function_matches_method(self):
        spec = make_spec()
        assert spec.fingerprint() == fingerprint_spec(spec)


class TestCacheCorrectness:
    def test_hit_returns_identical_records(self):
        sweep = make_sweep()
        cache = ResultCache()
        first = run_sweep(sweep, cache=cache)
        assert cache.stats.hits == 0 and cache.stats.stores > 0
        second = run_sweep(sweep, cache=cache)
        assert records_of(second) == records_of(first)
        assert cache.stats.misses == cache.stats.stores
        assert cache.stats.hits == cache.stats.stores

    def test_cached_run_matches_uncached_run(self):
        sweep = make_sweep()
        cache = ResultCache()
        run_sweep(sweep, cache=cache)
        assert records_of(run_sweep(sweep, cache=cache)) == records_of(
            run_sweep(sweep)
        )

    def test_different_seeds_never_collide(self):
        cache = ResultCache()
        a = run_sweep(make_sweep(make_spec(seed=0)), cache=cache)
        b = run_sweep(make_sweep(make_spec(seed=1)), cache=cache)
        assert cache.stats.hits == 0
        assert records_of(a) != records_of(b)

    def test_record_mode_is_part_of_the_key(self):
        sweep = make_sweep()
        cache = ResultCache()
        run_sweep(sweep, cache=cache, record="full")
        full_stores = cache.stats.stores
        run_sweep(sweep, cache=cache, record="summary")
        assert cache.stats.hits == 0
        assert cache.stats.stores == 2 * full_stores

    def test_shared_strategy_is_computed_not_cached(self):
        sweep = make_sweep()
        shared = Sweep(
            sweep.base,
            parameters=sweep.parameters,
            trials=sweep.trials,
            backend=sweep.backend,
            seed_strategy="shared",
        )
        cache = ResultCache()
        result = run_sweep(shared, cache=cache)
        assert cache.stats.uncacheable == len(records_of(result))
        assert cache.stats.stores == 0
        assert records_of(result) == records_of(run_sweep(shared))

    def test_task_keys_differ_per_task(self):
        sweep = make_sweep()
        cache = ResultCache()
        plan = build_sweep_plan(sweep, backend=TimingSimBackend(engine="auto"))
        keys = [cache.task_key(task) for task in plan.tasks]
        assert None not in keys
        assert len(set(keys)) == len(keys)


class TestDiskTier:
    def test_disk_hit_reconstructs_equal_records(self, tmp_path):
        sweep = make_sweep()
        first = run_sweep(sweep, record="summary", cache=ResultCache(tmp_path))
        fresh = ResultCache(tmp_path)  # simulates a new process
        second = run_sweep(sweep, record="summary", cache=fresh)
        assert fresh.stats.misses == 0 and fresh.stats.hits > 0
        assert records_of(second) == records_of(first)

    def test_full_records_stay_memory_only(self, tmp_path):
        sweep = make_sweep()
        run_sweep(sweep, record="full", cache=ResultCache(tmp_path))
        assert list(tmp_path.glob("*.json")) == []

    def test_corrupted_disk_entry_is_recomputed(self, tmp_path):
        sweep = make_sweep()
        run_sweep(sweep, record="summary", cache=ResultCache(tmp_path))
        entries = sorted(tmp_path.glob("*.json"))
        assert entries
        entries[0].write_text("{ not json", encoding="utf-8")
        entries[1].write_text(json.dumps({"results": [{"bogus": 1}]}), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        result = run_sweep(sweep, record="summary", cache=fresh)
        assert fresh.stats.disk_errors == 2
        assert fresh.stats.misses == 2
        assert records_of(result) == records_of(run_sweep(sweep, record="summary"))

    def test_cache_accepts_a_directory_path(self, tmp_path):
        sweep = make_sweep()
        first = run_sweep(sweep, record="summary", cache=str(tmp_path))
        second = run_sweep(sweep, record="summary", cache=str(tmp_path))
        assert records_of(second) == records_of(first)
        assert sorted(tmp_path.glob("*.json"))


class TestConcurrentWriters:
    """Two writers sharing a cache directory must never tear an entry.

    The regression: ``store`` used the fixed temp name ``{key}.tmp``, so a
    second writer of the same key could open the *first* writer's temp file
    mid-write and either writer's atomic ``replace`` could publish the other
    writer's half-written payload. Temp names are now unique per write
    (pid + process-wide counter).
    """

    @staticmethod
    def _seed_entry(directory):
        """One real (key, results) pair, produced by an actual sweep."""
        cache = ResultCache(directory)
        run_sweep(make_sweep(), record="summary", cache=cache)
        key = next(iter(cache._memory))
        return key, cache._memory[key]

    def test_tmp_names_are_unique_per_write_and_per_writer(self, tmp_path):
        cache_a = ResultCache(tmp_path)
        cache_b = ResultCache(tmp_path)
        key = "deadbeef" * 8
        names = {
            cache_a._tmp_path(key),
            cache_a._tmp_path(key),
            cache_b._tmp_path(key),
        }
        # Before the fix all three collapsed to the same "{key}.tmp" path.
        assert len(names) == 3
        for name in names:
            assert name.name.startswith(key)
            assert name.suffix == ".tmp"

    def test_tmp_name_embeds_the_pid(self, tmp_path):
        import os

        tmp = ResultCache(tmp_path)._tmp_path("a" * 64)
        assert str(os.getpid()) in tmp.name

    def test_simultaneous_stores_of_the_same_key(self, tmp_path):
        import threading

        key, results = self._seed_entry(tmp_path / "seed")
        shared = tmp_path / "shared"
        writers = [ResultCache(shared) for _ in range(2)]
        rounds = 25
        barrier = threading.Barrier(len(writers))
        errors = []

        def hammer(cache):
            try:
                for _ in range(rounds):
                    barrier.wait()
                    cache.store(key, results)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(cache,)) for cache in writers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Whatever the interleaving, the published entry is one writer's
        # complete payload: a fresh cache (new process, empty memory tier)
        # must decode it to the exact records either writer stored.
        fresh = ResultCache(shared)
        loaded = fresh.lookup(key)
        assert fresh.stats.disk_errors == 0
        assert loaded == list(results)
