"""The async sweep service: dedup, streaming, budgets, and the TCP front.

``SweepService.run`` must be functionally interchangeable with
``run_sweep`` (same records, same order); everything the service adds —
in-flight deduplication, streamed partial batches, cell budgets, the JSON
protocol — is behaviour on top, pinned here.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.service import ResultCache, SweepService
from repro.service.server import (
    _self_test,
    self_test,
    sweep_from_request,
)
from repro.stragglers.models import ShiftedExponentialDelay


def make_sweep(trials=2, seed=0):
    cluster = ClusterSpec.homogeneous(8, ShiftedExponentialDelay(1.0, 0.5))
    base = JobSpec(
        scheme={"name": "bcc", "load": 4},
        cluster=cluster,
        num_units=16,
        num_iterations=3,
        seed=seed,
    )
    return Sweep(
        base,
        parameters={"scheme.load": [4, 8]},
        trials=trials,
        backend=TimingSimBackend(engine="auto"),
    )


def records_of(result):
    return [(r.cell, r.trial, r.result) for r in result]


class TestSweepService:
    def test_run_matches_run_sweep(self):
        sweep = make_sweep()
        service = SweepService(max_workers=4)
        result = service.submit(sweep, record="full")
        assert records_of(result) == records_of(run_sweep(sweep))

    def test_resubmission_is_served_from_cache(self):
        sweep = make_sweep()
        service = SweepService()
        first = service.submit(sweep)
        executed = service.stats.tasks_executed
        second = service.submit(sweep)
        assert service.stats.tasks_executed == executed
        assert service.cache.stats.hits == executed
        assert records_of(second) == records_of(first)

    def test_stream_yields_every_record(self):
        sweep = make_sweep()
        service = SweepService(max_workers=2)

        async def collect():
            batches = []
            async for batch in service.stream(sweep, record="full"):
                batches.append(batch)
            return batches

        batches = asyncio.run(collect())
        streamed = sorted(
            ((r.cell, r.trial, r.result) for batch in batches for r in batch),
        )
        assert streamed == sorted(records_of(run_sweep(sweep)))
        # streamed batches arrive one per scheduled task
        assert all(batch for batch in batches)

    def test_concurrent_identical_submissions_deduplicate(self):
        sweep = make_sweep()
        service = SweepService(max_workers=2)

        async def both():
            return await asyncio.gather(
                service.run(sweep, record="full"),
                service.run(sweep, record="full"),
            )

        first, second = asyncio.run(both())
        assert records_of(first) == records_of(second)
        deduped = service.stats.tasks_deduplicated
        hits = service.cache.stats.hits
        # Every task of the second submission was either deduplicated
        # in-flight or served from the cache; none executed twice.
        assert deduped + hits == service.stats.tasks_executed
        assert service.cache.stats.stores == service.stats.tasks_executed

    def test_cell_budget_rejects_before_execution(self):
        service = SweepService(cell_budget=1)
        with pytest.raises(BudgetExceededError, match="at most 1"):
            service.submit(make_sweep())
        assert service.stats.tasks_executed == 0
        assert service.stats.budget_rejections == 1

    def test_budget_admits_small_submissions(self):
        service = SweepService(cell_budget=2)
        result = service.submit(make_sweep())
        assert len(records_of(result)) == 4

    def test_shared_strategy_executes_sequentially(self):
        sweep = make_sweep()
        shared = Sweep(
            sweep.base,
            parameters=sweep.parameters,
            trials=sweep.trials,
            backend=sweep.backend,
            seed_strategy="shared",
        )
        service = SweepService(max_workers=4)
        result = service.submit(shared, record="full")
        assert records_of(result) == records_of(run_sweep(shared))
        assert service.cache.stats.stores == 0

    def test_service_shares_a_cache_with_run_sweep(self):
        sweep = make_sweep()
        cache = ResultCache()
        run_sweep(sweep, record="summary", cache=cache)
        service = SweepService(cache=cache)
        service.submit(sweep, record="summary")
        assert service.stats.tasks_executed == 0

    def test_invalid_record_rejected(self):
        service = SweepService()
        with pytest.raises(ConfigurationError, match="record"):
            service.submit(make_sweep(), record="everything")

    def test_invalid_trial_batching_rejected(self):
        service = SweepService()
        with pytest.raises(ConfigurationError, match="trial_batching"):
            service.submit(make_sweep(), trial_batching="sometimes")

    def test_worker_limited_service_survives_repeat_submissions(self):
        # Each submit() drives a fresh asyncio.run loop; the executor's
        # concurrency semaphore must not stay bound to the first loop.
        service = SweepService(max_workers=2)
        service.submit(make_sweep(seed=0))
        result = service.submit(make_sweep(seed=1))  # distinct: forces execution
        assert len(records_of(result)) == 4

    def test_cancelled_waiter_keeps_inflight_dedup(self):
        # A cancelled caller must not evict the in-flight entry while the
        # shielded execution is still running — a concurrent identical
        # submission has to deduplicate against it, not recompute.
        from repro.api.backends import get_backend
        from repro.scheduling.core import build_sweep_plan

        sweep = make_sweep()
        plan = build_sweep_plan(
            sweep, backend=get_backend(sweep.backend), record="summary"
        )
        task = plan.tasks[0]

        async def scenario():
            service = SweepService(max_workers=2)
            key = service.cache.task_key(task)
            assert key is not None
            started = asyncio.Event()
            release = asyncio.Event()

            async def slow_run_task(_task):
                started.set()
                await release.wait()
                return ["sentinel"]

            service.executor.run_task = slow_run_task
            waiter = asyncio.ensure_future(service._cached_task(task))
            await started.wait()
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert key in service._inflight
            second = asyncio.ensure_future(service._cached_task(task))
            await asyncio.sleep(0)
            release.set()
            assert await second == ["sentinel"]
            assert service.stats.tasks_deduplicated == 1
            assert service.stats.tasks_executed == 1
            await asyncio.sleep(0)  # let the done-callback clear the key
            assert key not in service._inflight

        asyncio.run(scenario())


class TestServer:
    def test_sweep_from_request_builds_cli_equivalent_grid(self):
        sweep, record, trial_batching = sweep_from_request(
            {"schemes": ["bcc", "uncoded"], "loads": [5, 10], "workers": 20,
             "units": 20, "iterations": 5, "trials": 2}
        )
        assert len(sweep.cells()) == 3  # bcc x 2 loads + uncoded
        assert sweep.trials == 2
        assert record == "summary"
        assert trial_batching == "auto"

    def test_unknown_request_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown request key"):
            sweep_from_request({"schemes": ["bcc"], "palette": "dark"})

    def test_empty_scheme_list_rejected(self):
        # An IndexError here would kill the connection task with no error
        # event; the handler only translates ReproError/ValueError.
        with pytest.raises(ConfigurationError, match="at least one scheme"):
            sweep_from_request({"schemes": []})

    def test_empty_load_list_rejected_when_schemes_sweep_load(self):
        with pytest.raises(ConfigurationError, match="zero sweep cells"):
            sweep_from_request({"schemes": ["bcc"], "loads": []})

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            sweep_from_request({"schemes": ["quantum"]})

    def test_unsupported_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            sweep_from_request({"backend": "multiprocess"})

    def test_self_test_round_trip(self):
        # The full TCP story: serve on an ephemeral port, submit the same
        # sweep twice, require the resubmission to be served from cache.
        request = {
            "schemes": ["bcc"],
            "loads": [4],
            "workers": 10,
            "units": 10,
            "iterations": 3,
            "trials": 2,
        }
        assert asyncio.run(_self_test("127.0.0.1", request)) == 0

    def test_packaged_self_test_passes(self):
        assert self_test() == 0
