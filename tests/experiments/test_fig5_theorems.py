"""Tests for the Fig. 5 driver and the Theorem 1 / 2 validation drivers."""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.experiments.fig5 import run_fig5
from repro.experiments.theorems import (
    run_theorem1_validation,
    run_theorem2_validation,
)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        # Scaled-down cluster (30 workers, m = 150) keeps the Monte-Carlo fast
        # while preserving the 95 % slow / 5 % fast composition.
        cluster = ClusterSpec.paper_fig5_cluster(num_workers=30, num_fast=2)
        return run_fig5(num_examples=150, cluster=cluster, num_trials=80, rng=0)

    def test_generalized_bcc_beats_lb(self, result):
        assert result.bcc_average_time < result.lb_average_time

    def test_reduction_magnitude(self, result):
        # The paper reports 29.28 %; accept a broad band around it.
        assert 0.10 <= result.reduction <= 0.60

    def test_lb_uses_no_redundancy(self, result):
        assert result.lb_loads_total == 150
        assert result.bcc_loads_total > result.lb_loads_total

    def test_render(self, result):
        text = result.render()
        assert "LB" in text and "generalized BCC" in text

    def test_paper_configuration_runs(self):
        result = run_fig5(num_examples=500, num_trials=20, rng=1)
        assert result.num_workers == 100
        assert result.bcc_average_time < result.lb_average_time


class TestTheorem1Validation:
    @pytest.fixture(scope="class")
    def validation(self):
        return run_theorem1_validation(
            num_examples=60, loads=[6, 12, 30], num_trials=400, rng=0
        )

    def test_simulation_matches_closed_form(self, validation):
        assert validation.max_relative_error() < 0.1

    def test_sandwich_holds(self, validation):
        for lower, simulated in zip(validation.lower_bounds, validation.simulated):
            assert simulated >= lower - 1e-9

    def test_render(self, validation):
        assert "Theorem 1" in validation.render()


class TestTheorem2Validation:
    @pytest.fixture(scope="class")
    def validation(self):
        cluster = ClusterSpec.paper_fig5_cluster(num_workers=25, num_fast=2, shift=5.0)
        return run_theorem2_validation(
            num_examples=60, cluster=cluster, num_trials=120, rng=0
        )

    def test_bounds_order(self, validation):
        assert validation.bounds.lower <= validation.bounds.upper

    def test_measured_time_within_bounds(self, validation):
        assert validation.within_bounds, validation.render()

    def test_render(self, validation):
        assert "Theorem 2" in validation.render()
