"""Tests for the Fig. 2 experiment driver."""

import pytest

from repro.analysis.coupon import harmonic_number
from repro.experiments.fig2 import run_fig2


class TestRunFig2:
    @pytest.fixture(scope="class")
    def result(self):
        # A scaled-down instance keeps the Monte-Carlo cheap while preserving
        # the qualitative ordering of the curves.
        return run_fig2(
            num_examples=40, num_workers=40, loads=[4, 8, 20], monte_carlo_trials=20, rng=0
        )

    def test_curves_present(self, result):
        assert set(result.curves) == {
            "lower-bound",
            "bcc",
            "randomized",
            "cyclic-repetition",
        }
        assert set(result.simulated) == {"bcc", "randomized"}
        assert result.loads == [4, 8, 20]

    def test_analytic_bcc_values(self, result):
        # r = 8 -> 5 batches -> K = 5 * H_5.
        index = result.loads.index(8)
        assert result.curves["bcc"][index] == pytest.approx(5 * harmonic_number(5))

    def test_paper_ordering_holds(self, result):
        for index in range(len(result.loads)):
            lower = result.curves["lower-bound"][index]
            bcc = result.curves["bcc"][index]
            cyclic = result.curves["cyclic-repetition"][index]
            randomized = result.curves["randomized"][index]
            assert lower <= bcc + 1e-9
            assert bcc <= randomized + 1e-9
            assert bcc <= cyclic + 1e-9

    def test_simulation_tracks_closed_form(self, result):
        for index in range(len(result.loads)):
            closed_form = result.curves["bcc"][index]
            simulated = result.simulated["bcc"][index]
            assert simulated == pytest.approx(closed_form, rel=0.35)

    def test_render_is_table(self, result):
        text = result.render()
        assert "Fig. 2" in text
        assert "bcc" in text and "randomized" in text

    def test_simulation_can_be_skipped(self):
        result = run_fig2(num_examples=20, num_workers=20, loads=[5], monte_carlo_trials=0)
        assert result.simulated == {}
