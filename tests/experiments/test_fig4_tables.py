"""Tests for the Fig. 4 / Tables I-II scenario driver.

The tests run scaled-down iteration counts; the qualitative claims (who wins,
ordering of recovery thresholds, communication dominating) are exactly the
paper's and must hold even with modest Monte-Carlo sizes.
"""

import pytest

from repro.experiments.fig4 import ScenarioConfig, default_schemes, run_scenario


@pytest.fixture(scope="module")
def scenario_one_result():
    return run_scenario(ScenarioConfig.scenario_one(), rng=0, num_iterations=25)


@pytest.fixture(scope="module")
def scenario_two_result():
    return run_scenario(ScenarioConfig.scenario_two(), rng=1, num_iterations=15)


class TestScenarioConfig:
    def test_paper_defaults(self):
        one = ScenarioConfig.scenario_one()
        two = ScenarioConfig.scenario_two()
        assert (one.num_workers, one.num_batches) == (50, 50)
        assert (two.num_workers, two.num_batches) == (100, 100)
        assert one.load == 10 and one.points_per_batch == 100
        assert one.num_examples == 5000

    def test_default_schemes(self):
        schemes = default_schemes(ScenarioConfig.scenario_one())
        assert set(schemes) == {"uncoded", "cyclic-repetition", "bcc"}

    def test_validation(self):
        with pytest.raises((ValueError, TypeError)):
            ScenarioConfig(num_workers=0)


class TestScenarioOne:
    def test_recovery_threshold_ordering(self, scenario_one_result):
        rows = {name: scenario_one_result.row(name) for name in scenario_one_result.jobs}
        assert rows["uncoded"]["recovery_threshold"] == pytest.approx(50.0)
        assert rows["cyclic-repetition"]["recovery_threshold"] == pytest.approx(41.0)
        # BCC waits for ~11 workers on average (5 batches, 5 * H_5 ~ 11.4).
        assert 9.0 <= rows["bcc"]["recovery_threshold"] <= 14.0

    def test_bcc_is_fastest(self, scenario_one_result):
        rows = {name: scenario_one_result.row(name) for name in scenario_one_result.jobs}
        assert rows["bcc"]["total_time"] < rows["cyclic-repetition"]["total_time"]
        assert rows["cyclic-repetition"]["total_time"] < rows["uncoded"]["total_time"]

    def test_speedups_have_paper_magnitude(self, scenario_one_result):
        # Paper: 85.4 % over uncoded, 69.9 % over cyclic repetition. Allow a
        # generous band — the shape, not the exact percentage, is the claim.
        over_uncoded = scenario_one_result.speedup_over("bcc", "uncoded")
        over_cyclic = scenario_one_result.speedup_over("bcc", "cyclic-repetition")
        assert 0.6 <= over_uncoded <= 0.97
        assert 0.4 <= over_cyclic <= 0.92

    def test_communication_dominates_computation(self, scenario_one_result):
        for name in scenario_one_result.jobs:
            row = scenario_one_result.row(name)
            assert row["communication_time"] > row["computation_time"]

    def test_cyclic_computation_exceeds_bcc(self, scenario_one_result):
        # Table I: CR computes longer than BCC because it waits for the 41st
        # fastest worker rather than the ~11th.
        rows = {name: scenario_one_result.row(name) for name in scenario_one_result.jobs}
        assert (
            rows["cyclic-repetition"]["computation_time"] > rows["bcc"]["computation_time"]
        )

    def test_render(self, scenario_one_result):
        text = scenario_one_result.render()
        assert "scenario-one" in text
        assert "recovery threshold" in text


class TestScenarioTwo:
    def test_recovery_thresholds(self, scenario_two_result):
        rows = {name: scenario_two_result.row(name) for name in scenario_two_result.jobs}
        assert rows["uncoded"]["recovery_threshold"] == pytest.approx(100.0)
        assert rows["cyclic-repetition"]["recovery_threshold"] == pytest.approx(91.0)
        # 10 batches -> K = 10 * H_10 ~ 29.3 (paper observes ~25).
        assert 22.0 <= rows["bcc"]["recovery_threshold"] <= 34.0

    def test_bcc_still_fastest_and_gains_shrink(
        self, scenario_one_result, scenario_two_result
    ):
        assert scenario_two_result.speedup_over("bcc", "uncoded") > 0.5
        # The paper notes the gain over uncoded shrinks from scenario one to
        # two (85.4 % -> 73.0 %) because r cannot be raised further.
        assert (
            scenario_two_result.speedup_over("bcc", "uncoded")
            <= scenario_one_result.speedup_over("bcc", "uncoded") + 0.05
        )


class TestSemanticMode:
    def test_semantic_run_trains_model(self):
        config = ScenarioConfig(
            name="tiny",
            num_workers=10,
            num_batches=10,
            points_per_batch=20,
            load=2,
            num_iterations=5,
            num_features=30,
        )
        result = run_scenario(config, rng=3, semantic=True)
        for job in result.jobs.values():
            assert job.training is not None
            assert job.training.losses[-1] <= job.training.losses[0] + 1e-9
