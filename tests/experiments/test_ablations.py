"""Tests for the ablation sweeps — qualitative shapes only."""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.experiments.ablations import (
    allocation_strategy_comparison,
    communication_ratio_sweep,
    delay_model_comparison,
    load_sweep,
    straggler_intensity_sweep,
)


class TestLoadSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return load_sweep(loads=(5, 10, 25), num_iterations=10, rng=0)

    def test_one_row_per_load(self, rows):
        assert [row["load"] for row in rows] == [5.0, 10.0, 25.0]

    def test_recovery_threshold_decreases_with_load(self, rows):
        thresholds = [row["recovery_threshold"] for row in rows]
        assert thresholds[0] > thresholds[1] > thresholds[2]

    def test_times_are_positive_and_consistent(self, rows):
        for row in rows:
            assert row["total_time"] > 0
            assert row["total_time"] >= row["computation_time"]


class TestStragglerIntensitySweep:
    def test_speedup_grows_with_network_straggling(self):
        rows = straggler_intensity_sweep(
            jitters=(0.005, 0.2), num_iterations=12, rng=0
        )
        assert rows[0]["speedup"] > 0
        assert rows[1]["speedup"] >= rows[0]["speedup"] - 0.02

    def test_bcc_always_faster_than_uncoded(self):
        rows = straggler_intensity_sweep(jitters=(0.06,), num_iterations=12, rng=1)
        assert rows[0]["bcc_total_time"] < rows[0]["uncoded_total_time"]


class TestDelayModelComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return delay_model_comparison(num_iterations=10, rng=0)

    def test_covers_three_delay_families(self, rows):
        assert {row["delay_model"] for row in rows} == {
            "shift-exponential",
            "pareto",
            "bimodal",
        }

    def test_bcc_wins_under_every_delay_model(self, rows):
        # The universality claim: BCC needs no knowledge of the distribution.
        for row in rows:
            assert row["bcc_total_time"] < row["uncoded_total_time"]
            assert row["bcc_total_time"] < row["cyclic_total_time"]


class TestCommunicationRatioSweep:
    def test_bcc_advantage_grows_with_comm_cost(self):
        rows = communication_ratio_sweep(
            comm_costs=(1e-3, 1e-1), num_iterations=8, rng=0
        )
        ratios = [row["randomized_total_time"] / row["bcc_total_time"] for row in rows]
        assert ratios[-1] > ratios[0]

    def test_randomized_ships_r_times_more_data(self):
        rows = communication_ratio_sweep(comm_costs=(1e-2,), num_iterations=8, rng=1)
        row = rows[0]
        assert (
            row["randomized_communication_load"] > 3.0 * row["bcc_communication_load"]
        )


class TestAllocationComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        cluster = ClusterSpec.paper_fig5_cluster(num_workers=20, num_fast=2)
        return allocation_strategy_comparison(
            num_examples=80, cluster=cluster, num_trials=60, rng=0
        )

    def test_three_strategies(self, rows):
        assert {row["strategy"] for row in rows} == {
            "load-balanced",
            "uniform",
            "p2-random",
        }

    def test_p2_random_beats_load_balanced(self, rows):
        # This is the paper's Fig. 5 claim. (The uniform row is informational:
        # with a dominant deterministic shift it can beat both — see the
        # ablation's docstring.)
        times = {row["strategy"]: row["average_time"] for row in rows}
        assert times["p2-random"] < times["load-balanced"]
