"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.experiment == "fig2"
        assert args.examples == 100
        assert args.workers == 100
        assert args.seed == 0

    def test_global_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "fig5"])
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestMain:
    def test_fig2_prints_table(self, capsys):
        code = main(["fig2", "--examples", "20", "--workers", "20", "--trials", "0"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Fig. 2" in captured
        assert "bcc" in captured

    def test_table1_scaled_down(self, capsys):
        code = main(["table1", "--iterations", "5"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "scenario-one" in captured
        assert "BCC speed-up vs uncoded" in captured

    def test_fig5_scaled_down(self, capsys):
        code = main(["fig5", "--examples", "60", "--trials", "20"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "generalized BCC" in captured

    def test_theorem1(self, capsys):
        code = main(["theorem1", "--examples", "40", "--trials", "100"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1" in captured

    def test_theorem2(self, capsys):
        code = main(["theorem2", "--examples", "40", "--trials", "40", "--workers", "20"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Theorem 2" in captured


class TestAnalyticPaths:
    """The closed-form flags of every rewired experiment driver."""

    def test_fig2_analytic_backend(self, capsys):
        code = main(
            ["fig2", "--examples", "20", "--workers", "20", "--trials", "1",
             "--backend", "analytic"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "(analytic)" in captured

    def test_table1_analytic_backend(self, capsys):
        code = main(["table1", "--iterations", "5", "--backend", "analytic"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "scenario-one" in captured
        assert "BCC speed-up" in captured

    def test_theorem1_analytic_estimator(self, capsys):
        code = main(
            ["theorem1", "--examples", "40", "--trials", "10",
             "--estimator", "analytic"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "K_BCC analytic" in captured

    def test_theorem2_analytic_flag(self, capsys):
        code = main(
            ["theorem2", "--examples", "40", "--trials", "30", "--workers", "20",
             "--analytic"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "analytic generalized-BCC coverage time" in captured

    def test_sweep_analytic_backend(self, capsys):
        code = main(
            ["sweep", "--backend", "analytic", "--scheme", "bcc",
             "--loads", "5,10", "--workers", "20", "--units", "20",
             "--iterations", "50"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "analytic backend" in captured


class TestSweepCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.experiment == "sweep"
        assert args.schemes is None
        assert args.loads == [5, 10, 25]
        assert args.backend == "timing"
        assert args.parallel is None

    def test_loads_flag_parses_comma_list(self):
        args = build_parser().parse_args(["sweep", "--loads", "2,4,8"])
        assert args.loads == [2, 4, 8]

    def test_timing_sweep_prints_grid(self, capsys):
        code = main(
            [
                "sweep",
                "--scheme", "bcc",
                "--scheme", "uncoded",
                "--loads", "5,10",
                "--workers", "20",
                "--units", "20",
                "--iterations", "3",
                "--trials", "2",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "Sweep — timing backend" in captured
        assert "bcc(load=5)" in captured
        assert "bcc(load=10)" in captured
        assert "uncoded" in captured
        assert "total_time" in captured

    def test_parallel_sweep_matches_serial(self, capsys):
        argv = [
            "sweep",
            "--scheme", "bcc",
            "--loads", "5,10",
            "--workers", "20",
            "--units", "20",
            "--iterations", "3",
            "--trials", "2",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--parallel", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_semantic_sweep_reports_loss(self, capsys):
        code = main(
            [
                "sweep",
                "--backend", "semantic",
                "--scheme", "bcc",
                "--loads", "4",
                "--workers", "8",
                "--units", "8",
                "--unit-size", "5",
                "--iterations", "3",
                "--features", "10",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "semantic backend" in captured
        assert "final_loss" in captured

    def test_engine_flag_default_and_choices(self):
        args = build_parser().parse_args(["sweep"])
        assert args.engine == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--engine", "warp"])

    def test_engine_choices_print_identical_tables(self, capsys):
        argv = [
            "sweep",
            "--scheme", "bcc",
            "--loads", "5",
            "--workers", "20",
            "--units", "20",
            "--iterations", "3",
            "--trials", "2",
        ]
        outputs = {}
        for engine in ("loop", "vectorized", "auto"):
            assert main(argv + ["--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["loop"] == outputs["vectorized"] == outputs["auto"]
