"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.experiment == "fig2"
        assert args.examples == 100
        assert args.workers == 100
        assert args.seed == 0

    def test_global_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "fig5"])
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestMain:
    def test_fig2_prints_table(self, capsys):
        code = main(["fig2", "--examples", "20", "--workers", "20", "--trials", "0"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Fig. 2" in captured
        assert "bcc" in captured

    def test_table1_scaled_down(self, capsys):
        code = main(["table1", "--iterations", "5"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "scenario-one" in captured
        assert "BCC speed-up vs uncoded" in captured

    def test_fig5_scaled_down(self, capsys):
        code = main(["fig5", "--examples", "60", "--trials", "20"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "generalized BCC" in captured

    def test_theorem1(self, capsys):
        code = main(["theorem1", "--examples", "40", "--trials", "100"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1" in captured

    def test_theorem2(self, capsys):
        code = main(["theorem2", "--examples", "40", "--trials", "40", "--workers", "20"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Theorem 2" in captured
