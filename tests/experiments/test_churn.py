"""Tests for the churn ablation driver and the CLI ``--dynamics`` surface."""

import numpy as np
import pytest

from repro.cluster.dynamic import DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.exceptions import AnalyticIntractableError, ConfigurationError
from repro.experiments.churn import (
    ChurnAblationConfig,
    available_dynamics,
    default_scenarios,
    dynamics_from_spec,
    run_churn_ablation,
)
from repro.experiments.cli import build_parser, main, run_cli_sweep
from repro.stragglers.dynamics import (
    DriftingDelay,
    MarkovModulatedDelay,
    PreemptionModel,
)
from repro.stragglers.models import ShiftedExponentialDelay


@pytest.fixture
def base() -> ClusterSpec:
    return ClusterSpec.homogeneous(8, ShiftedExponentialDelay(1.0, 0.05))


class TestDynamicsFromSpec:
    def test_bare_process_name(self, base):
        spec = dynamics_from_spec("markov", base)
        assert isinstance(spec, DynamicClusterSpec)
        assert all(
            isinstance(process, MarkovModulatedDelay)
            for process in spec._processes
        )

    def test_name_with_parameters(self, base):
        spec = dynamics_from_spec("drift:final_factor=5,initial_factor=2", base)
        process = spec._processes[0]
        assert isinstance(process, DriftingDelay)
        assert process.final_factor == pytest.approx(5.0)
        assert process.initial_factor == pytest.approx(2.0)

    def test_preempt_parameters(self, base):
        spec = dynamics_from_spec(
            "preempt:preempt_probability=0.5,recovery_iterations=4", base
        )
        process = spec._processes[0]
        assert isinstance(process, PreemptionModel)
        assert process.preempt_probability == pytest.approx(0.5)
        assert process.recovery_iterations == 4

    def test_churn_scenario_builds_a_schedule(self, base):
        spec = dynamics_from_spec("churn:period=5,recovery=2", base,
                                  num_iterations=20)
        kinds = sorted({event.kind for event in spec.events})
        assert kinds == ["leave", "preempt"]
        assert all(event.worker < base.num_workers for event in spec.events)

    def test_churn_scenario_needs_two_iterations(self, base):
        with pytest.raises(ConfigurationError, match="at least 2 iterations"):
            dynamics_from_spec("churn", base, num_iterations=1)

    def test_malformed_and_unknown_specs_raise(self, base):
        with pytest.raises(ConfigurationError, match="key=value"):
            dynamics_from_spec("markov:slowdown", base)
        with pytest.raises(ConfigurationError, match="unknown dynamics"):
            dynamics_from_spec("quake", base)
        with pytest.raises(ConfigurationError, match="does not accept"):
            dynamics_from_spec("churn:bogus=1", base)

    def test_available_dynamics_lists_processes_and_scenarios(self):
        names = available_dynamics()
        assert {"markov", "drift", "preempt", "churn"} <= set(names)


class TestChurnAblation:
    def test_small_ablation_reports_bcc_surviving_churn(self):
        config = ChurnAblationConfig(
            num_workers=12, num_units=12, unit_size=10, load=4,
            num_iterations=10, trials=2,
        )
        result = run_churn_ablation(config, rng=0)
        assert result.scenario_names[0] == "static"
        assert "bcc" in result.scheme_names
        # Static cells complete for every scheme.
        for scheme in result.scheme_names:
            assert result.completed("static", scheme), scheme
        # The scripted churn removes a worker for good: uncoded (zero
        # redundancy) cannot complete, the redundant schemes can.
        assert not result.completed("churn", "uncoded")
        assert result.completed("churn", "bcc")
        rendered = result.render()
        assert "FAILED" in rendered and "bcc" in rendered

    def test_speedup_helper_and_failure_guard(self):
        config = ChurnAblationConfig(
            num_workers=12, num_units=12, unit_size=10, load=4,
            num_iterations=8, trials=1,
        )
        result = run_churn_ablation(config, rng=1)
        speedup = result.speedup_over("static", "bcc", "uncoded")
        assert -5.0 < speedup < 1.0
        with pytest.raises(Exception):
            result.speedup_over("churn", "bcc", "uncoded")

    def test_deterministic_under_the_seed(self):
        config = ChurnAblationConfig(
            num_workers=10, num_units=10, unit_size=5, load=5,
            num_iterations=6, trials=1,
        )
        first = run_churn_ablation(config, rng=7)
        second = run_churn_ablation(config, rng=7)
        assert first.total_times == second.total_times

    def test_custom_scenarios_and_schemes(self, base):
        config = ChurnAblationConfig(
            num_workers=8, num_units=8, unit_size=5, load=4,
            num_iterations=5, trials=1,
        )
        result = run_churn_ablation(
            config,
            rng=0,
            schemes={"bcc": {"name": "bcc", "load": 4}},
            scenarios={"only": dynamics_from_spec("drift", base)},
        )
        assert result.scenario_names == ["only"]
        assert result.scheme_names == ["bcc"]
        assert result.completed("only", "bcc")


class TestCliDynamics:
    def test_sweep_dynamics_end_to_end(self):
        args = build_parser().parse_args(
            [
                "sweep", "--dynamics", "markov:slowdown=4,p_slow=0.2",
                "--scheme", "bcc", "--loads", "4",
                "--workers", "10", "--units", "10",
                "--iterations", "4", "--trials", "1",
            ]
        )
        table = run_cli_sweep(args)
        assert "dynamics=markov" in table
        assert "bcc" in table

    def test_sweep_dynamics_failed_cell_names_the_cell(self):
        from repro.exceptions import SimulationError

        # Uncoded cannot survive the churn scenario's permanent leave; the
        # sweep aborts, but the error must name the failing cell and cause.
        args = build_parser().parse_args(
            [
                "sweep", "--dynamics", "churn", "--scheme", "uncoded",
                "--loads", "4", "--workers", "10", "--units", "10",
                "--iterations", "20", "--trials", "1",
            ]
        )
        with pytest.raises(SimulationError, match="sweep cell.*uncoded"):
            run_cli_sweep(args)

    def test_sweep_dynamics_analytic_raises_typed_error(self):
        args = build_parser().parse_args(
            [
                "sweep", "--dynamics", "drift", "--backend", "analytic",
                "--scheme", "bcc", "--loads", "4",
                "--workers", "10", "--units", "10", "--iterations", "4",
            ]
        )
        with pytest.raises(AnalyticIntractableError):
            run_cli_sweep(args)

    def test_churn_subcommand_prints_the_ablation(self, capsys):
        exit_code = main(
            [
                "churn", "--workers", "12", "--units", "12",
                "--unit-size", "5", "--load", "4",
                "--iterations", "5", "--trials", "1",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Churn ablation" in out
        assert "bcc" in out
