"""Golden-seed regression fixtures for the paper-figure drivers.

Small fixed-seed runs of the ``fig2`` and ``fig4`` drivers are snapshotted
as JSON under ``tests/experiments/golden/``; these tests regenerate the runs
and diff them against the snapshots. Any engine or RNG-contract refactor
that silently drifts the paper figures fails here, with the exact metric
named — the complement of the pairwise engine-equivalence suites, which
cannot see a drift that moves *both* engines together.

Regenerate the snapshots (after an *intentional* output change) with::

    PYTHONPATH=src python tests/experiments/test_golden_fixtures.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig4 import ScenarioConfig, run_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Comparison tolerance: loose enough for cross-platform libm wiggle, tight
#: enough that any real change of the simulated draws or accounting fails.
RELATIVE_TOLERANCE = 1e-9


def generate_fig2() -> dict:
    """A scaled-down Fig. 2 run at a fixed seed, as plain JSON data."""
    result = run_fig2(
        num_examples=40, num_workers=40, monte_carlo_trials=5, rng=7
    )
    return {
        "num_examples": result.num_examples,
        "num_workers": result.num_workers,
        "loads": [int(load) for load in result.loads],
        "curves": {
            name: [float(value) for value in values]
            for name, values in sorted(result.curves.items())
        },
        "simulated": {
            name: [float(value) for value in values]
            for name, values in sorted(result.simulated.items())
        },
    }


def generate_fig4() -> dict:
    """A scaled-down Table I (Fig. 4 scenario one) run at a fixed seed."""
    config = ScenarioConfig.scenario_one(num_iterations=5)
    result = run_scenario(config, rng=3)
    return {
        "scenario": config.name,
        "rows": {
            scheme: {
                key: (float(value) if key != "scheme" else value)
                for key, value in result.row(scheme).items()
            }
            for scheme in sorted(result.jobs)
        },
    }


FIXTURES = {
    "fig2_m40_n40_seed7.json": generate_fig2,
    "fig4_scenario_one_5iter_seed3.json": generate_fig4,
}


def _assert_matches(expected, actual, path=""):
    """Recursive diff with a relative tolerance on floats, exact elsewhere."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected a mapping"
        assert sorted(expected) == sorted(actual), f"{path}: keys differ"
        for key in expected:
            _assert_matches(expected[key], actual[key], f"{path}/{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), f"{path}: lengths differ"
        for index, (left, right) in enumerate(zip(expected, actual)):
            _assert_matches(left, right, f"{path}[{index}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(
            expected, rel=RELATIVE_TOLERANCE, abs=1e-12
        ), f"{path}: {actual!r} drifted from the golden {expected!r}"
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_driver_output_matches_golden_snapshot(fixture):
    golden_path = GOLDEN_DIR / fixture
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; regenerate with "
        "`PYTHONPATH=src python tests/experiments/test_golden_fixtures.py`"
    )
    expected = json.loads(golden_path.read_text())
    actual = FIXTURES[fixture]()
    _assert_matches(expected, actual, path=fixture)


def test_fixture_regeneration_is_deterministic():
    # The generators must be pure functions of their fixed seeds, otherwise
    # the snapshots could never be trusted in the first place.
    assert generate_fig2() == generate_fig2()


if __name__ == "__main__":
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, generate in FIXTURES.items():
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(generate(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
