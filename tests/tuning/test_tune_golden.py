"""Golden fixture pinning the full ``repro tune`` recommendation.

A fig2-sized scenario (m = n = 100 on the EC2-like calibration) at a fixed
seed is tuned end to end and the complete report — ranked order, simulated
means, confidence half-widths, analytic ratios, and the pruning counters —
is snapshotted as JSON under ``tests/tuning/golden/``. Any refactor of the
analytic oracle, the timing engines, the seed derivation, or the pruning
logic that would silently move a recommendation fails here with the exact
field named.

Regenerate the snapshot (after an *intentional* output change) with::

    PYTHONPATH=src python tests/tuning/test_tune_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.ec2 import ec2_like_cluster
from repro.tuning import TuneSpec, tune

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Comparison tolerance: loose enough for cross-platform libm wiggle, tight
#: enough that any real change of the draws or the ranking fails.
RELATIVE_TOLERANCE = 1e-9


def fig2_spec() -> TuneSpec:
    """The pinned scenario: the paper's Fig. 2 size on the EC2 profile."""
    return TuneSpec(
        cluster=ec2_like_cluster(100),
        loads=(5, 10, 25),
        num_units=(100,),
        unit_sizes=(100,),
        num_iterations=10,
        trials=4,
        top_k=5,
        seed=0,
    )


def generate() -> dict:
    return tune(fig2_spec()).to_record()


FIXTURES = {
    "tune_fig2_ec2.json": generate,
}


def _assert_matches(expected, actual, path=""):
    """Recursive diff with a relative tolerance on floats, exact elsewhere."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected a mapping"
        assert sorted(expected) == sorted(actual), f"{path}: keys differ"
        for key in expected:
            _assert_matches(expected[key], actual[key], f"{path}/{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), f"{path}: lengths differ"
        for index, (left, right) in enumerate(zip(expected, actual)):
            _assert_matches(left, right, f"{path}[{index}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(
            expected, rel=RELATIVE_TOLERANCE, abs=1e-12
        ), f"{path}: {actual!r} drifted from the golden {expected!r}"
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_recommendation_matches_golden_snapshot(fixture):
    golden_path = GOLDEN_DIR / fixture
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; regenerate with "
        "`PYTHONPATH=src python tests/tuning/test_tune_golden.py`"
    )
    expected = json.loads(golden_path.read_text())
    actual = FIXTURES[fixture]()
    _assert_matches(expected, actual, path=fixture)


def test_golden_scenario_actually_prunes():
    """The snapshot must keep exercising both pipeline stages."""
    record = json.loads((GOLDEN_DIR / "tune_fig2_ec2.json").read_text())
    pruning = record["pruning"]
    assert pruning["pruned"] > 0
    assert pruning["simulated"] == len(record["ranking"])
    assert pruning["simulated"] < pruning["candidates"]


def test_fixture_regeneration_is_deterministic():
    # The generator must be a pure function of the pinned seed, otherwise
    # the snapshot could never be trusted in the first place.
    assert generate() == generate()


if __name__ == "__main__":
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, generator in FIXTURES.items():
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(generator(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
