"""The scheme auto-tuner: enumeration, pruning, confirmation, wiring.

The contracts under test (see ``docs/tuning.rst``):

* the candidate grid enumerates (scheme, load, m, unit_size) with stable
  indices, expanding the load axis only for load-taking schemes;
* infeasible configurations are ledgered, analytically intractable ones
  fall through to simulation instead of dying, and the top-k frontier plus
  the budget bound the simulated cell count;
* the recommendation matches exhaustive-simulation ground truth at the
  same seeds (common random numbers across candidates);
* confidence intervals are Student-t over the per-trial totals;
* the CLI, the service ``recommend`` method, and the TCP request grammar
  all drive the same pipeline.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest

from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    ReproError,
)
from repro.experiments.ec2 import ec2_like_cluster
from repro.service import ResultCache, SweepService
from repro.tuning import (
    DEFAULT_TUNE_SCHEMES,
    TuneSpec,
    trial_confidence_halfwidth,
    tune,
    tune_from_request,
)


def make_spec(**overrides) -> TuneSpec:
    settings = dict(
        cluster=ec2_like_cluster(16),
        schemes=("bcc", "uncoded"),
        loads=(4, 8),
        num_units=(16,),
        unit_sizes=(10,),
        num_iterations=4,
        trials=3,
        top_k=3,
        seed=5,
    )
    settings.update(overrides)
    return TuneSpec(**settings)


class TestCandidateGrid:
    def test_load_axis_expands_only_for_load_taking_schemes(self):
        candidates = make_spec().candidates()
        # bcc takes a load (2 loads), uncoded does not (1 candidate).
        assert [c.scheme for c in candidates] == [
            {"name": "bcc", "load": 4},
            {"name": "bcc", "load": 8},
            {"name": "uncoded"},
        ]

    def test_indices_are_stable_positions_in_the_full_grid(self):
        candidates = make_spec(num_units=(8, 16)).candidates()
        assert [c.index for c in candidates] == list(range(len(candidates)))
        assert [(c.num_units, c.scheme["name"]) for c in candidates[:2]] == [
            (8, "bcc"),
            (16, "bcc"),
        ]

    def test_default_scheme_subset(self):
        spec = make_spec(schemes=None)
        assert spec.scheme_names == DEFAULT_TUNE_SCHEMES

    def test_unknown_scheme_rejected_at_spec_time(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            make_spec(schemes=("bcc", "nope"))

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            make_spec(loads=())

    def test_label_is_compact(self):
        bcc, _, uncoded = make_spec().candidates()
        assert bcc.label == "bcc(load=4)"
        assert uncoded.label == "uncoded"


class TestPipeline:
    def test_infeasible_candidates_are_ledgered_not_fatal(self):
        report = tune(make_spec(loads=(4, 32)))  # load 32 > m=16
        assert report.pruning["infeasible"] == 1
        assert any("32" in label for label in report.infeasible)
        assert report.ranking  # the feasible part still ran

    def test_intractable_candidates_fall_through_to_simulation(self):
        # Serialising heterogeneous per-unit messages has no closed form,
        # so load-balanced is intractable there — it must still be ranked.
        report = tune(
            make_spec(
                schemes=("bcc", "load-balanced"),
                loads=(4,),
                serialize_master_link=True,
                top_k=5,
            )
        )
        assert report.pruning["intractable"] == 1
        balanced = [
            row
            for row in report.ranking
            if row.candidate.scheme["name"] == "load-balanced"
        ]
        assert len(balanced) == 1
        assert balanced[0].analytic_seconds is None
        assert balanced[0].analytic_ratio is None

    def test_unsimulable_survivor_is_a_ledgered_failure(self):
        # uncoded with m < n is analytically intractable AND cannot build a
        # placement; it must land in the failure ledger, not kill the run.
        report = tune(make_spec(num_units=(8,), top_k=5))
        assert report.pruning["intractable"] == 1
        assert report.pruning["failed"] == 1
        assert any("uncoded" in label for label in report.failures)
        assert report.ranking  # bcc candidates still ranked

    def test_top_k_bounds_the_simulated_count(self):
        report = tune(make_spec(schemes=None, loads=(4, 8, 12), top_k=2))
        assert report.pruning["simulated"] <= 2
        assert (
            report.pruning["pruned"]
            == report.pruning["analytic_scored"] - 2
        )

    def test_budget_caps_frontier_plus_intractables(self):
        report = tune(make_spec(num_units=(8,), top_k=5, budget=1))
        assert report.pruning["simulated"] == 1
        assert report.pruning["budget_dropped"] >= 1

    def test_ranking_is_sorted_by_simulated_mean(self):
        report = tune(make_spec(schemes=None))
        means = [row.simulated_seconds for row in report.ranking]
        assert means == sorted(means)
        assert report.best is report.ranking[0]

    def test_analytic_ratio_is_the_sanity_column(self):
        report = tune(make_spec())
        for row in report.ranking:
            if row.analytic_seconds is not None:
                assert row.analytic_ratio == pytest.approx(
                    row.analytic_seconds / row.simulated_seconds
                )
                # The oracle and the simulator price the same quantity; on
                # a stationary cluster they must agree within Monte-Carlo
                # noise at these sizes.
                assert 0.3 < row.analytic_ratio < 3.0

    def test_empty_ranking_raises_on_best(self):
        report = tune(make_spec(schemes=("bcc",), loads=(32,)))
        assert report.ranking == []
        with pytest.raises(ConfigurationError, match="no candidate"):
            report.best

    def test_deterministic_at_fixed_seed(self):
        first = tune(make_spec())
        second = tune(make_spec())
        assert first.to_record() == second.to_record()

    def test_quick_shrinks_the_spec(self):
        spec = make_spec(
            trials=16, num_iterations=50, num_units=(8, 16, 32), top_k=5
        )
        quick = spec.quick()
        assert quick.trials == 2
        assert quick.num_iterations == 5
        assert quick.num_units == (8, 16)
        assert quick.top_k == 3


class TestGroundTruth:
    def test_recommendation_matches_exhaustive_simulation(self):
        """The acceptance contract: analytic pruning must not change the
        winner. Simulate *every* feasible candidate at the same seeds and
        compare against the tuner's pruned recommendation."""
        spec = make_spec(schemes=None, loads=(4, 8), top_k=4)
        report = tune(spec)

        exhaustive = {}
        for candidate in spec.candidates():
            job = JobSpec(
                scheme=dict(candidate.scheme),
                cluster=spec.cluster,
                num_units=candidate.num_units,
                unit_size=candidate.unit_size,
                num_iterations=spec.num_iterations,
                serialize_master_link=spec.serialize_master_link,
                seed=spec.seed,
            )
            try:
                result = run_sweep(
                    Sweep(
                        job,
                        trials=spec.trials,
                        backend=TimingSimBackend(engine=spec.engine),
                    ),
                    record="summary",
                )
            except ReproError:
                continue  # infeasible or unsimulable; the tuner ledgers these
            exhaustive[candidate.index] = float(
                np.mean([r.result.total_time for r in result])
            )

        truth_index = min(exhaustive, key=exhaustive.get)
        assert report.best.candidate.index == truth_index
        # Common random numbers: the tuner's mean for the winner IS the
        # exhaustive mean, bit for bit.
        assert report.best.simulated_seconds == exhaustive[truth_index]
        assert len(exhaustive) > report.pruning["simulated"]

    def test_cache_reuse_skips_resimulation(self, tmp_path):
        spec = make_spec()
        cache = ResultCache(tmp_path)
        first = tune(spec, cache=cache)
        misses = cache.stats.misses
        second = tune(spec, cache=cache)
        assert cache.stats.misses == misses  # all hits the second time
        assert second.to_record() == first.to_record()

    def test_dynamics_scenario_simulates_the_dynamic_cluster(self):
        stationary = tune(make_spec(schemes=("bcc",), loads=(4,)))
        dynamic = tune(
            make_spec(
                schemes=("bcc",),
                loads=(4,),
                dynamics="markov:slowdown=8,p_slow=0.2",
            )
        )
        # Analytic pruning still works (stationary proxy), but the
        # confirmed runtimes price the churning cluster.
        assert dynamic.pruning["analytic_scored"] == 1
        assert (
            dynamic.best.simulated_seconds
            != stationary.best.simulated_seconds
        )


class TestConfidenceIntervals:
    def test_single_trial_has_no_interval(self):
        assert trial_confidence_halfwidth([1.0]) is None
        report = tune(make_spec(trials=1))
        assert all(row.ci_halfwidth is None for row in report.ranking)

    def test_halfwidth_matches_student_t_formula(self):
        values = [1.0, 2.0, 4.0, 5.0]
        expected_se = np.std(values, ddof=1) / math.sqrt(len(values))
        scipy_stats = pytest.importorskip("scipy.stats")
        t = scipy_stats.t.ppf(0.975, len(values) - 1)
        assert trial_confidence_halfwidth(values) == pytest.approx(
            t * expected_se
        )

    def test_higher_confidence_widens_the_interval(self):
        values = [1.0, 2.0, 4.0, 5.0]
        assert trial_confidence_halfwidth(
            values, 0.99
        ) > trial_confidence_halfwidth(values, 0.9)

    def test_more_trials_shrink_the_interval(self):
        rng = np.random.default_rng(0)
        few = trial_confidence_halfwidth(list(rng.normal(10, 1, 4)))
        many = trial_confidence_halfwidth(list(rng.normal(10, 1, 64)))
        assert many < few

    def test_bad_confidence_rejected(self):
        with pytest.raises(ConfigurationError, match="confidence"):
            trial_confidence_halfwidth([1.0, 2.0], confidence=1.5)
        with pytest.raises(ConfigurationError, match="confidence"):
            make_spec(confidence=0.0)


class TestReport:
    def test_record_round_trips_through_json(self):
        import json

        report = tune(make_spec())
        assert json.loads(report.to_json()) == report.to_record()

    def test_table_lists_every_confirmed_candidate(self):
        report = tune(make_spec())
        rendered = report.to_table().render()
        for row in report.ranking:
            assert row.candidate.label in rendered
        assert "analytic/sim" in rendered

    def test_pruning_factor(self):
        report = tune(make_spec(schemes=None, loads=(4, 8, 12), top_k=2))
        feasible = (
            report.pruning["analytic_scored"] + report.pruning["intractable"]
        )
        assert report.pruning_factor == pytest.approx(
            feasible / report.pruning["simulated"]
        )


class TestRequestGrammar:
    def test_request_builds_a_matching_spec(self):
        spec = tune_from_request(
            {
                "workers": 16,
                "schemes": ["bcc"],
                "loads": [4, 8],
                "units": [16],
                "unit_sizes": [10],
                "iterations": 4,
                "trials": 3,
                "top_k": 2,
                "seed": 5,
            }
        )
        assert spec.scheme_names == ("bcc",)
        assert spec.loads == (4, 8)
        assert spec.num_units == (16,)
        assert spec.trials == 3
        assert spec.cluster.num_workers == 16

    def test_quick_flag_applies_the_quick_profile(self):
        spec = tune_from_request({"workers": 16, "trials": 16, "quick": True})
        assert spec.trials == 2

    def test_unknown_keys_are_loud(self):
        with pytest.raises(ConfigurationError, match="unknown recommend key"):
            tune_from_request({"workers": 16, "cells": 10})


class TestServiceRecommend:
    def request_spec(self) -> TuneSpec:
        return make_spec(trials=2, num_iterations=3)

    def test_recommend_runs_through_the_service_cache(self):
        service = SweepService()

        async def scenario():
            first = await service.recommend(self.request_spec())
            misses_before = service.cache.stats.misses
            hits_before = service.cache.stats.hits
            second = await service.recommend(self.request_spec())
            return (
                first,
                second,
                service.cache.stats.misses - misses_before,
                service.cache.stats.hits - hits_before,
            )

        first, second, misses, hits = asyncio.run(scenario())
        assert first.to_record() == second.to_record()
        # The repeat recommendation re-simulates nothing: every one of its
        # tasks (>= one per confirmed candidate) is a cache hit.
        assert misses == 0
        assert hits >= first.pruning["simulated"]

    def test_cell_budget_caps_an_uncapped_spec(self):
        service = SweepService(cell_budget=1)
        report = asyncio.run(service.recommend(self.request_spec()))
        assert report.pruning["simulated"] == 1

    def test_oversized_request_budget_rejected(self):
        service = SweepService(cell_budget=1)
        spec = make_spec(budget=5)
        with pytest.raises(BudgetExceededError, match="at most 1"):
            asyncio.run(service.recommend(spec))
        assert service.stats.budget_rejections == 1


class TestCLI:
    def test_tune_subcommand_prints_a_recommendation(self, capsys):
        from repro.experiments.cli import main

        code = main(
            [
                "tune",
                "--workers",
                "16",
                "--scheme",
                "bcc",
                "--scheme",
                "uncoded",
                "--loads",
                "4,8",
                "--units",
                "16",
                "--unit-sizes",
                "10",
                "--iterations",
                "3",
                "--trials",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recommendation:" in out
        assert "bcc" in out

    def test_tune_json_mode_emits_the_record(self, capsys):
        import json

        from repro.experiments.cli import main

        code = main(
            [
                "tune",
                "--quick",
                "--json",
                "--workers",
                "16",
                "--scheme",
                "bcc",
                "--loads",
                "4",
                "--units",
                "16",
                "--unit-sizes",
                "10",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ranking"]
        assert payload["pruning"]["candidates"] >= 1


class TestServerProtocol:
    def test_recommend_request_over_tcp(self):
        from repro.service.server import _connection, submit_request

        async def scenario():
            service = SweepService()
            server = await asyncio.start_server(
                lambda r, w: _connection(service, r, w), "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            request = {
                "request": "recommend",
                "workers": 16,
                "schemes": ["bcc", "uncoded"],
                "loads": [4, 8],
                "units": [16],
                "unit_sizes": [10],
                "iterations": 3,
                "trials": 2,
                "seed": 5,
            }
            async with server:
                first = await submit_request("127.0.0.1", port, request)
                second = await submit_request("127.0.0.1", port, request)
                bad = await submit_request(
                    "127.0.0.1", port, {"request": "optimise"}
                )
            return first, second, bad

        first, second, bad = asyncio.run(scenario())
        assert [event["event"] for event in first] == ["recommendation", "done"]
        report = first[0]["report"]
        assert report["ranking"][0]["scheme"]["name"]
        assert report["pruning"]["simulated"] >= 1
        # Resubmission is served from the cache.
        assert second[-1]["cache_hit_rate"] == 1.0
        assert second[0]["report"] == report
        assert bad[0]["event"] == "error"
        assert "unknown request type" in bad[0]["error"]
