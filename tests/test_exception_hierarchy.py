"""Regression tests for the typed-exception migration.

The library-wide conversion of bare ``ValueError``/``RuntimeError`` raises
to the :mod:`repro.exceptions` hierarchy must be invisible to existing
callers: ``ConfigurationError`` and ``DataError`` keep ``ValueError`` as a
base, so historical ``except ValueError`` handlers (and the 70+ tests
written against them) continue to work, while new code can catch the
hierarchy precisely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, ReproError
from repro.gradients.softmax import SoftmaxLoss
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.optim.schedules import ConstantSchedule
from repro.stragglers.models import ShiftedExponentialDelay
from repro.utils.validation import check_positive_int, check_probability


class TestHierarchyShape:
    def test_configuration_error_is_a_value_error(self):
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ConfigurationError, ReproError)

    def test_data_error_is_a_value_error(self):
        assert issubclass(DataError, ValueError)
        assert issubclass(DataError, ReproError)

    def test_instances_are_catchable_both_ways(self):
        error = ConfigurationError("bad")
        assert isinstance(error, ValueError)
        assert isinstance(error, ReproError)


class TestConvertedSites:
    def test_validation_helpers_raise_configuration_error(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "n")
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")

    def test_validation_helpers_still_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "n")

    def test_wrong_type_still_raises_type_error(self):
        # Programming errors deliberately stay outside the hierarchy.
        with pytest.raises(TypeError):
            check_positive_int("five", "n")

    def test_delay_model_construction(self):
        with pytest.raises(ConfigurationError):
            ShiftedExponentialDelay(straggling=-1.0)
        with pytest.raises(ValueError):
            ShiftedExponentialDelay(straggling=0.0)

    def test_optimizer_schedule_errors(self):
        with pytest.raises(ConfigurationError):
            NesterovAcceleratedGradient(-0.5)
        with pytest.raises(ConfigurationError):
            ConstantSchedule(-1.0)
        with pytest.raises(TypeError):
            NesterovAcceleratedGradient(object())

    def test_softmax_parameter_vs_data_errors(self):
        with pytest.raises(ConfigurationError):
            SoftmaxLoss(num_classes=1)
        loss = SoftmaxLoss(num_classes=3)
        features = np.ones((4, 2))
        labels = np.array([0, 1, 2, 0])
        with pytest.raises(DataError):
            # weights of the wrong length is a data-shape failure
            loss.gradient_sum(np.zeros(5), features, labels)
        with pytest.raises(DataError):
            # out-of-range labels are a data failure too
            loss.gradient_sum(np.zeros(6), features, np.array([0, 1, 5, 0]))

    def test_data_error_catchable_as_value_error(self):
        loss = SoftmaxLoss(num_classes=3)
        with pytest.raises(ValueError):
            loss.gradient_sum(np.zeros(5), np.ones((4, 2)), np.array([0, 1, 2, 0]))
