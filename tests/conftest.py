"""Shared fixtures for the test suite (and the Hypothesis profiles).

Profiles
--------
``default``
    Hypothesis's stock behaviour: fresh random examples every run, which is
    what local development wants (every run explores new corners).
``ci``
    Derandomized, reproducible example generation for the tier-1 property
    job: the same examples on every run, so a CI failure is always
    reproducible locally with ``HYPOTHESIS_PROFILE=ci``. Select it via the
    ``HYPOTHESIS_PROFILE`` environment variable.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.cluster.spec import ClusterSpec
from repro.datasets.base import Dataset
from repro.datasets.synthetic import (
    LogisticDataConfig,
    make_linear_regression_data,
    make_paper_logistic_data,
)
from repro.gradients.logistic import LogisticLoss
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ExponentialDelay, ShiftedExponentialDelay


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator shared by tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_logistic_dataset() -> tuple[Dataset, np.ndarray]:
    """A small instance of the paper's synthetic logistic dataset."""
    config = LogisticDataConfig(num_examples=60, num_features=12)
    return make_paper_logistic_data(config, seed=7)


@pytest.fixture
def small_regression_dataset() -> tuple[Dataset, np.ndarray]:
    """A small linear-regression dataset with known ground truth."""
    return make_linear_regression_data(40, 6, noise_std=0.05, seed=11)


@pytest.fixture
def logistic_model() -> LogisticLoss:
    return LogisticLoss()


@pytest.fixture
def homogeneous_cluster() -> ClusterSpec:
    """A 12-worker homogeneous cluster with mild straggling and cheap comm."""
    return ClusterSpec.homogeneous(
        12,
        ShiftedExponentialDelay(straggling=10.0, shift=0.01),
        LinearCommunicationModel(latency=0.001, seconds_per_unit=0.01, jitter=0.005),
    )


@pytest.fixture
def exponential_cluster() -> ClusterSpec:
    """A 20-worker cluster with unit-rate exponential compute times, free comm."""
    return ClusterSpec.homogeneous(20, ExponentialDelay(straggling=1.0))
