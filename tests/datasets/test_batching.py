"""Tests for repro.datasets.batching."""

import numpy as np
import pytest

from repro.datasets.batching import (
    BatchSpec,
    batch_of_example,
    contiguous_partition,
    make_batches,
)
from repro.exceptions import DataError


class TestMakeBatches:
    def test_exact_division(self):
        spec = make_batches(20, 5)
        assert spec.num_batches == 4
        assert all(size == 5 for size in spec.batch_sizes)

    def test_remainder_goes_to_last_batch(self):
        spec = make_batches(22, 5)
        assert spec.num_batches == 5
        assert spec.batch_sizes.tolist() == [5, 5, 5, 5, 2]

    def test_single_batch(self):
        spec = make_batches(7, 7)
        assert spec.num_batches == 1

    def test_batch_size_one(self):
        spec = make_batches(5, 1)
        assert spec.num_batches == 5
        assert spec.max_batch_size == 1

    def test_batch_size_larger_than_m_rejected(self):
        with pytest.raises(DataError):
            make_batches(5, 6)

    def test_batches_are_disjoint_and_cover(self):
        spec = make_batches(17, 4)
        all_indices = np.concatenate(spec.batches)
        assert sorted(all_indices.tolist()) == list(range(17))


class TestContiguousPartition:
    def test_equal_parts(self):
        spec = contiguous_partition(10, 5)
        assert spec.num_batches == 5
        assert all(size == 2 for size in spec.batch_sizes)

    def test_unequal_parts_differ_by_at_most_one(self):
        spec = contiguous_partition(10, 3)
        sizes = spec.batch_sizes
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_more_parts_than_examples_rejected(self):
        with pytest.raises(DataError):
            contiguous_partition(3, 4)


class TestBatchSpecValidation:
    def test_overlapping_batches_rejected(self):
        with pytest.raises(DataError):
            BatchSpec(num_examples=4, batches=(np.array([0, 1]), np.array([1, 2, 3])))

    def test_missing_example_rejected(self):
        with pytest.raises(DataError):
            BatchSpec(num_examples=4, batches=(np.array([0, 1]), np.array([2])))

    def test_out_of_range_rejected(self):
        with pytest.raises(DataError):
            BatchSpec(num_examples=3, batches=(np.array([0, 1, 3]),))

    def test_empty_batch_rejected(self):
        with pytest.raises(DataError):
            BatchSpec(num_examples=2, batches=(np.array([0, 1]), np.array([])))

    def test_no_batches_rejected(self):
        with pytest.raises(DataError):
            BatchSpec(num_examples=2, batches=())


class TestBatchSpecQueries:
    @pytest.fixture
    def spec(self):
        return make_batches(10, 3)

    def test_batch_indices(self, spec):
        np.testing.assert_array_equal(spec.batch_indices(0), [0, 1, 2])
        np.testing.assert_array_equal(spec.batch_indices(3), [9])

    def test_batch_indices_out_of_range(self, spec):
        with pytest.raises(DataError):
            spec.batch_indices(4)

    def test_membership_roundtrip(self, spec):
        member = spec.membership()
        for batch_id, indices in enumerate(spec.batches):
            assert all(member[j] == batch_id for j in indices)

    def test_batch_of_example(self, spec):
        assert batch_of_example(spec, 0) == 0
        assert batch_of_example(spec, 9) == 3
        with pytest.raises(DataError):
            batch_of_example(spec, 10)

    def test_max_batch_size(self, spec):
        assert spec.max_batch_size == 3
