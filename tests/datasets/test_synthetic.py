"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    LogisticDataConfig,
    make_linear_regression_data,
    make_paper_logistic_data,
    make_separable_classification_data,
)


class TestLogisticDataConfig:
    def test_rejects_nonpositive_sizes(self):
        with pytest.raises((ValueError, TypeError)):
            LogisticDataConfig(num_examples=0, num_features=5)
        with pytest.raises((ValueError, TypeError)):
            LogisticDataConfig(num_examples=5, num_features=0)

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            LogisticDataConfig(num_examples=5, num_features=5, mean_scale=-1.0)


class TestPaperLogisticData:
    @pytest.fixture
    def data(self):
        config = LogisticDataConfig(num_examples=200, num_features=20)
        return make_paper_logistic_data(config, seed=0)

    def test_shapes(self, data):
        dataset, true_w = data
        assert dataset.features.shape == (200, 20)
        assert dataset.labels.shape == (200,)
        assert true_w.shape == (20,)

    def test_true_weights_are_plus_minus_one(self, data):
        _, true_w = data
        assert set(np.unique(true_w)).issubset({-1.0, 1.0})

    def test_labels_are_plus_minus_one(self, data):
        dataset, _ = data
        assert set(np.unique(dataset.labels)).issubset({-1.0, 1.0})

    def test_both_classes_present(self, data):
        dataset, _ = data
        assert (dataset.labels == 1.0).any()
        assert (dataset.labels == -1.0).any()

    def test_reproducible(self):
        config = LogisticDataConfig(num_examples=50, num_features=8)
        d1, w1 = make_paper_logistic_data(config, seed=3)
        d2, w2 = make_paper_logistic_data(config, seed=3)
        np.testing.assert_array_equal(d1.features, d2.features)
        np.testing.assert_array_equal(d1.labels, d2.labels)
        np.testing.assert_array_equal(w1, w2)

    def test_seed_changes_data(self):
        config = LogisticDataConfig(num_examples=50, num_features=8)
        d1, _ = make_paper_logistic_data(config, seed=3)
        d2, _ = make_paper_logistic_data(config, seed=4)
        assert not np.array_equal(d1.features, d2.features)

    def test_labels_correlate_with_model(self):
        # With the paper's label rule y ~ Ber(1/(1+exp(x.w*))), a positive
        # margin x.w* makes y = +1 *less* likely, so the empirical correlation
        # between the margin sign and the label should be negative.
        config = LogisticDataConfig(num_examples=4000, num_features=10, mean_scale=5.0)
        dataset, true_w = make_paper_logistic_data(config, seed=1)
        margins = dataset.features @ true_w
        agreement = np.mean(np.sign(margins) == dataset.labels)
        assert agreement < 0.5


class TestLinearRegressionData:
    def test_shapes_and_noise(self):
        dataset, true_w = make_linear_regression_data(100, 5, noise_std=0.0, seed=0)
        np.testing.assert_allclose(dataset.features @ true_w, dataset.labels)

    def test_noise_added(self):
        dataset, true_w = make_linear_regression_data(100, 5, noise_std=1.0, seed=0)
        residual = dataset.labels - dataset.features @ true_w
        assert np.std(residual) > 0.5

    def test_invalid_sizes(self):
        with pytest.raises((ValueError, TypeError)):
            make_linear_regression_data(0, 5)
        with pytest.raises(ValueError):
            make_linear_regression_data(5, 5, noise_std=-1.0)


class TestSeparableData:
    def test_margin_is_respected(self):
        dataset, direction = make_separable_classification_data(
            200, 10, margin=1.5, seed=0
        )
        margins = dataset.labels * (dataset.features @ direction)
        assert margins.min() > 1.0

    def test_labels_binary(self):
        dataset, _ = make_separable_classification_data(50, 4, seed=1)
        assert set(np.unique(dataset.labels)).issubset({-1.0, 1.0})
