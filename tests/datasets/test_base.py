"""Tests for repro.datasets.base.Dataset."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.exceptions import DataError


class TestConstruction:
    def test_shapes_and_lengths(self):
        dataset = Dataset(np.zeros((5, 3)), np.zeros(5))
        assert dataset.num_examples == 5
        assert dataset.num_features == 3
        assert len(dataset) == 5

    def test_from_arrays_coerces(self):
        dataset = Dataset.from_arrays([[1, 2], [3, 4]], [0, 1], name="tiny")
        assert dataset.features.dtype == float
        assert dataset.name == "tiny"

    def test_rejects_1d_features(self):
        with pytest.raises(DataError):
            Dataset(np.zeros(5), np.zeros(5))

    def test_rejects_2d_labels(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((5, 2)), np.zeros((5, 1)))

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((0, 2)), np.zeros(0))

    def test_describe_mentions_shape(self):
        description = Dataset(np.zeros((5, 3)), np.zeros(5), name="d").describe()
        assert "m=5" in description and "p=3" in description


class TestSubsetting:
    @pytest.fixture
    def dataset(self):
        features = np.arange(20, dtype=float).reshape(10, 2)
        labels = np.arange(10, dtype=float)
        return Dataset(features, labels)

    def test_subset_preserves_order(self, dataset):
        subset = dataset.subset([3, 1, 7])
        np.testing.assert_array_equal(subset.labels, [3.0, 1.0, 7.0])
        np.testing.assert_array_equal(subset.features[0], dataset.features[3])

    def test_subset_out_of_range(self, dataset):
        with pytest.raises(DataError):
            dataset.subset([0, 10])
        with pytest.raises(DataError):
            dataset.subset([-1])

    def test_subset_empty(self, dataset):
        with pytest.raises(DataError):
            dataset.subset([])

    def test_rows_returns_views_of_values(self, dataset):
        features, labels = dataset.rows([2, 4])
        np.testing.assert_array_equal(labels, [2.0, 4.0])
        assert features.shape == (2, 2)
