"""Property-based tests of the fault-injection determinism contract.

Hypothesis draws random scenarios — worker count, horizon, dynamics kind and
parameters, scenario seed, job seed — and asserts the two invariants the
cross-validation loop rests on:

* the injected delay schedule is **bit-reproducible** from its seeds: the
  same (scenario seed, job seed) pair always yields the same fingerprint;
* the availability timeline is pinned by the scenario seed **alone**: a
  different job seed redraws every completion time but never changes which
  slots are vacant, so the real run and every simulation replay face the
  identical timeline.

The CI job runs this suite under the ``ci`` Hypothesis profile (registered
in ``tests/conftest.py``) with derandomized, reproducible example
generation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dynamic import DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.runtime.faults import build_fault_schedule
from repro.stragglers.models import ShiftedExponentialDelay


def dynamics_configs():
    """Registered worker-process configs with randomised parameters."""
    markov = st.fixed_dictionaries(
        {
            "name": st.just("markov"),
            "slowdown": st.floats(min_value=1.5, max_value=16.0),
            "p_slow": st.floats(min_value=0.01, max_value=0.5),
            "p_recover": st.floats(min_value=0.1, max_value=0.9),
        }
    )
    preempt = st.fixed_dictionaries(
        {
            "name": st.just("preempt"),
            "preempt_probability": st.floats(min_value=0.0, max_value=0.4),
            "recovery_iterations": st.integers(min_value=1, max_value=4),
        }
    )
    drift = st.fixed_dictionaries(
        {
            "name": st.just("drift"),
            "initial_factor": st.floats(min_value=0.5, max_value=2.0),
            "final_factor": st.floats(min_value=0.5, max_value=8.0),
        }
    )
    return st.one_of(markov, preempt, drift)


@st.composite
def fault_scenarios(draw):
    num_workers = draw(st.integers(min_value=2, max_value=6))
    num_iterations = draw(st.integers(min_value=1, max_value=12))
    base = ClusterSpec.homogeneous(
        num_workers, ShiftedExponentialDelay(straggling=500.0, shift=0.001)
    )
    spec = DynamicClusterSpec(
        base,
        dynamics=draw(dynamics_configs()),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )
    loads = draw(
        st.lists(
            st.integers(min_value=0, max_value=8),
            min_size=num_workers,
            max_size=num_workers,
        )
    )
    job_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return spec, num_iterations, loads, job_seed


@given(fault_scenarios())
@settings(max_examples=60, deadline=None)
def test_schedule_is_bit_reproducible_from_seeds(scenario):
    spec, num_iterations, loads, job_seed = scenario
    one = build_fault_schedule(
        spec, num_iterations, loads=loads, include_communication=False, rng=job_seed
    )
    two = build_fault_schedule(
        spec, num_iterations, loads=loads, include_communication=False, rng=job_seed
    )
    assert one.fingerprint() == two.fingerprint()
    np.testing.assert_array_equal(one.delays, two.delays)


@given(fault_scenarios(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_availability_is_pinned_by_scenario_seed_alone(scenario, other_job_seed):
    spec, num_iterations, loads, job_seed = scenario
    one = build_fault_schedule(
        spec, num_iterations, loads=loads, include_communication=False, rng=job_seed
    )
    two = build_fault_schedule(
        spec,
        num_iterations,
        loads=loads,
        include_communication=False,
        rng=other_job_seed,
    )
    np.testing.assert_array_equal(one.availability, two.availability)
