"""Property-based tests for batching and placement invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.placement import (
    bcc_placement,
    cyclic_placement,
    heterogeneous_random_placement,
    random_subset_placement,
    uncoded_placement,
)
from repro.datasets.batching import contiguous_partition, make_batches


class TestBatchingProperties:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_make_batches_partitions_exactly(self, data):
        m = data.draw(st.integers(min_value=1, max_value=300), label="m")
        r = data.draw(st.integers(min_value=1, max_value=m), label="r")
        spec = make_batches(m, r)
        combined = np.concatenate(spec.batches)
        assert sorted(combined.tolist()) == list(range(m))
        assert spec.num_batches == -(-m // r)
        assert spec.max_batch_size <= r

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_contiguous_partition_sizes_balanced(self, data):
        m = data.draw(st.integers(min_value=1, max_value=300), label="m")
        parts = data.draw(st.integers(min_value=1, max_value=m), label="parts")
        spec = contiguous_partition(m, parts)
        sizes = spec.batch_sizes
        assert sizes.sum() == m
        assert sizes.max() - sizes.min() <= 1


class TestPlacementProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_uncoded_placement_is_a_partition(self, data):
        m = data.draw(st.integers(min_value=1, max_value=200), label="m")
        n = data.draw(st.integers(min_value=1, max_value=m), label="n")
        assignment = uncoded_placement(m, n)
        assert assignment.is_complete()
        assert assignment.total_load == m
        assert assignment.example_multiplicity().max() == 1

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_bcc_placement_each_worker_one_batch(self, data, seed):
        m = data.draw(st.integers(min_value=1, max_value=100), label="m")
        r = data.draw(st.integers(min_value=1, max_value=m), label="r")
        n = data.draw(st.integers(min_value=1, max_value=60), label="n")
        spec = make_batches(m, r)
        assignment, choices = bcc_placement(spec, n, rng=seed)
        assert assignment.num_workers == n
        for worker in range(n):
            chosen = spec.batch_indices(int(choices[worker]))
            np.testing.assert_array_equal(assignment.worker_indices(worker), chosen)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_subset_placement_loads(self, data, seed):
        m = data.draw(st.integers(min_value=1, max_value=100), label="m")
        r = data.draw(st.integers(min_value=1, max_value=m), label="r")
        n = data.draw(st.integers(min_value=1, max_value=30), label="n")
        assignment = random_subset_placement(m, n, r, rng=seed)
        assert np.all(assignment.loads == r)
        # No duplicates within a worker (sampling without replacement).
        for worker in range(n):
            indices = assignment.worker_indices(worker)
            assert len(np.unique(indices)) == r

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_cyclic_placement_equal_replication(self, data):
        m = data.draw(st.integers(min_value=1, max_value=80), label="m")
        r = data.draw(st.integers(min_value=1, max_value=m), label="r")
        assignment = cyclic_placement(m, m, r)
        np.testing.assert_array_equal(assignment.example_multiplicity(), r)
        assert assignment.computational_load == r

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_heterogeneous_placement_respects_loads(self, data, seed):
        m = data.draw(st.integers(min_value=1, max_value=60), label="m")
        n = data.draw(st.integers(min_value=1, max_value=12), label="n")
        loads = [
            data.draw(st.integers(min_value=0, max_value=m), label=f"load{i}")
            for i in range(n)
        ]
        assignment = heterogeneous_random_placement(m, loads, rng=seed)
        assert assignment.loads.tolist() == loads
