"""Property-based tests for the gradient codes: decodability and exactness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.cyclic_repetition import CyclicRepetitionCode
from repro.coding.fractional import FractionalRepetitionCode
from repro.coding.reed_solomon import ReedSolomonStyleCode


def _random_survivors(rng, num_workers, count):
    return sorted(rng.choice(num_workers, size=count, replace=False).tolist())


class TestCyclicRepetitionProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_any_worst_case_survivor_set_decodes_exactly(self, data, seed):
        n = data.draw(st.integers(min_value=2, max_value=14), label="n")
        s = data.draw(st.integers(min_value=0, max_value=n - 1), label="s")
        code = CyclicRepetitionCode(num_workers=n, num_stragglers=s, seed=seed)
        rng = np.random.default_rng(seed)
        survivors = _random_survivors(rng, n, n - s)
        assert code.is_decodable(survivors)
        gradients = rng.standard_normal((n, 3))
        messages = np.vstack([code.encode(w, gradients) for w in survivors])
        decoded = code.decode(survivors, messages)
        np.testing.assert_allclose(decoded, gradients.sum(axis=0), atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_load_equals_s_plus_one(self, data, seed):
        n = data.draw(st.integers(min_value=2, max_value=20), label="n")
        s = data.draw(st.integers(min_value=0, max_value=n - 1), label="s")
        code = CyclicRepetitionCode(num_workers=n, num_stragglers=s, seed=seed)
        assert code.computational_load() == s + 1
        assert code.recovery_threshold == n - s


class TestReedSolomonStyleProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_contiguous_survivor_windows_decode_exactly(self, data, seed):
        n = data.draw(st.integers(min_value=2, max_value=12), label="n")
        s = data.draw(st.integers(min_value=0, max_value=min(n - 1, 4)), label="s")
        start = data.draw(st.integers(min_value=0, max_value=n - 1), label="start")
        code = ReedSolomonStyleCode(n, s)
        survivors = [(start + i) % n for i in range(n - s)]
        rng = np.random.default_rng(seed)
        gradients = rng.standard_normal((n, 2))
        messages = np.vstack([code.encode(w, gradients) for w in survivors])
        np.testing.assert_allclose(
            code.decode(survivors, messages), gradients.sum(axis=0), atol=1e-6
        )


class TestFractionalRepetitionProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_any_worst_case_survivor_set_decodes_exactly(self, data, seed):
        # Draw (s, group count) so that (s + 1) | n by construction.
        s = data.draw(st.integers(min_value=0, max_value=4), label="s")
        group_size = data.draw(st.integers(min_value=1, max_value=4), label="group_size")
        n = (s + 1) * group_size
        code = FractionalRepetitionCode(num_workers=n, num_stragglers=s)
        rng = np.random.default_rng(seed)
        survivors = _random_survivors(rng, n, n - s)
        assert code.is_decodable(survivors)
        gradients = rng.standard_normal((n, 2))
        messages = np.vstack([code.encode(w, gradients) for w in survivors])
        np.testing.assert_allclose(
            code.decode(survivors, messages), gradients.sum(axis=0), atol=1e-8
        )

    @settings(max_examples=40, deadline=None)
    @given(s=st.integers(min_value=0, max_value=5), group_size=st.integers(min_value=1, max_value=5))
    def test_every_group_covers_all_partitions(self, s, group_size):
        n = (s + 1) * group_size
        code = FractionalRepetitionCode(num_workers=n, num_stragglers=s)
        for group in code.groups:
            covered = np.concatenate([code.support(worker) for worker in group])
            assert sorted(covered.tolist()) == list(range(n))
