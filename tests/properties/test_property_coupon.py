"""Property-based tests for the coupon-collector and threshold formulas."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.coupon import (
    coupon_draw_variance,
    coverage_probability_after_draws,
    expected_coupon_draws,
    harmonic_number,
)
from repro.analysis.thresholds import (
    bcc_recovery_threshold,
    cyclic_repetition_recovery_threshold,
    lower_bound_recovery_threshold,
    randomized_recovery_threshold,
)


class TestHarmonicProperties:
    @given(n=st.integers(min_value=1, max_value=2000))
    def test_harmonic_is_increasing_and_bounded_by_log(self, n):
        assert harmonic_number(n) >= harmonic_number(n - 1)
        assert math.log(n) < harmonic_number(n) <= math.log(n) + 1.0

    @given(n=st.integers(min_value=1, max_value=500))
    def test_expected_draws_at_least_n(self, n):
        assert expected_coupon_draws(n) >= n

    @given(n=st.integers(min_value=1, max_value=300))
    def test_variance_nonnegative(self, n):
        assert coupon_draw_variance(n) >= 0.0


class TestCoverageProbabilityProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        num_types=st.integers(min_value=1, max_value=25),
        num_draws=st.integers(min_value=0, max_value=200),
    )
    def test_is_a_probability(self, num_types, num_draws):
        value = coverage_probability_after_draws(num_types, num_draws)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        num_types=st.integers(min_value=1, max_value=15),
        num_draws=st.integers(min_value=0, max_value=100),
    )
    def test_monotone_in_draws(self, num_types, num_draws):
        now = coverage_probability_after_draws(num_types, num_draws)
        later = coverage_probability_after_draws(num_types, num_draws + 5)
        assert later >= now - 1e-12


class TestThresholdProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_theorem1_sandwich_for_all_m_r(self, data):
        m = data.draw(st.integers(min_value=1, max_value=400), label="m")
        r = data.draw(st.integers(min_value=1, max_value=m), label="r")
        lower = lower_bound_recovery_threshold(m, r)
        upper = bcc_recovery_threshold(m, r)
        num_batches = math.ceil(m / r)
        assert lower <= upper + 1e-9
        assert upper <= math.ceil(lower) * harmonic_number(num_batches) + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_bcc_threshold_monotone_in_load(self, data):
        m = data.draw(st.integers(min_value=2, max_value=300), label="m")
        r = data.draw(st.integers(min_value=1, max_value=m - 1), label="r")
        assert bcc_recovery_threshold(m, r + 1) <= bcc_recovery_threshold(m, r) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_cyclic_threshold_linear_in_load(self, data):
        m = data.draw(st.integers(min_value=1, max_value=500), label="m")
        r = data.draw(st.integers(min_value=1, max_value=m), label="r")
        assert cyclic_repetition_recovery_threshold(m, r) == m - r + 1

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_randomized_threshold_bounds(self, data):
        # Keep m small: the exact rational computation is O(m) big-fraction ops.
        m = data.draw(st.integers(min_value=2, max_value=40), label="m")
        r = data.draw(st.integers(min_value=1, max_value=m), label="r")
        value = randomized_recovery_threshold(m, r)
        assert value >= m / r - 1e-9
        assert value >= 1.0
        # Coupon-collector upper bound: never worse than the r = 1 case.
        assert value <= randomized_recovery_threshold(m, 1) + 1e-9
