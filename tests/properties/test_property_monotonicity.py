"""Monotonicity properties of the expected runtime, for every scheme.

Physically obvious invariants that catch sign/parameterisation bugs across
the whole stack:

* runtime is **non-increasing in the straggling parameter** ``mu`` (larger
  ``mu`` means the exponential tail decays faster, i.e. *less* straggling);
* runtime is **non-decreasing in the per-worker computational load** as
  scaled by ``unit_size`` (more examples per unit means every worker
  computes longer).

Both are checked on the analytic path (expected values, all nine registered
schemes) and on the vectorized engine at fixed seeds, where they hold
*draw-for-draw*: scaling ``mu`` or ``unit_size`` rescales every completion
time computed from the same underlying uniform draws, so the comparison is
deterministic, not statistical.

The scheme's own computational load ``r`` is deliberately *not* tested for
monotonicity: the paper's Fig. 2 tradeoff is exactly that larger ``r`` buys
a smaller recovery threshold at more computation per worker, so total time
is non-monotone in ``r``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JobSpec, TimingSimBackend, run
from repro.cluster.spec import ClusterSpec
from repro.schemes.registry import available_schemes
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay

# One representative configuration per registered scheme (m = units).
SCHEME_MATRIX = {
    "uncoded": ({"name": "uncoded"}, 24),
    "bcc": ({"name": "bcc", "load": 6}, 24),
    "randomized": ({"name": "randomized", "load": 8}, 24),
    "ignore-stragglers": ({"name": "ignore-stragglers", "wait_fraction": 0.75}, 24),
    "cyclic-repetition": ({"name": "cyclic-repetition", "load": 4}, 12),
    "reed-solomon": ({"name": "reed-solomon", "load": 4}, 12),
    "fractional-repetition": ({"name": "fractional-repetition", "load": 4}, 12),
    "generalized-bcc": ({"name": "generalized-bcc"}, 24),
    "load-balanced": ({"name": "load-balanced"}, 24),
}

HETEROGENEOUS = {"generalized-bcc", "load-balanced"}

MU_GRID = (0.5, 1.0, 2.0, 4.0)
UNIT_SIZE_GRID = (1, 2, 5)

COMMUNICATION = LinearCommunicationModel(latency=0.02, seconds_per_unit=0.01)


def make_cluster(name: str, mu_factor: float = 1.0) -> ClusterSpec:
    if name in HETEROGENEOUS:
        return ClusterSpec.paper_fig5_cluster(
            num_workers=12,
            num_fast=2,
            slow_straggling=1.0 * mu_factor,
            fast_straggling=20.0 * mu_factor,
            shift=0.5,
            communication=COMMUNICATION,
        )
    return ClusterSpec.homogeneous(
        12,
        ShiftedExponentialDelay(straggling=mu_factor, shift=0.05),
        COMMUNICATION,
    )


def make_spec(name: str, *, mu_factor=1.0, unit_size=2, seed=0) -> JobSpec:
    config, num_units = SCHEME_MATRIX[name]
    return JobSpec(
        scheme=config,
        cluster=make_cluster(name, mu_factor),
        num_units=num_units,
        num_iterations=5,
        unit_size=unit_size,
        # Serialized + heterogeneous has no closed form; the parallel link
        # keeps one grid valid for both execution paths and all schemes.
        serialize_master_link=False,
        seed=seed,
    )


def assert_monotone(values, *, direction: str, context: str) -> None:
    arr = list(values)
    tolerance = 1e-12
    for left, right in zip(arr, arr[1:]):
        if direction == "non-increasing":
            assert right <= left + tolerance, f"{context}: {arr}"
        else:
            assert right >= left - tolerance, f"{context}: {arr}"


class TestMatrixCoverage:
    def test_matrix_covers_every_registered_scheme(self):
        assert sorted(SCHEME_MATRIX) == available_schemes()


class TestAnalyticMonotonicity:
    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_expected_runtime_non_increasing_in_straggling(self, name):
        totals = [
            run(make_spec(name, mu_factor=mu), backend="analytic").total_time
            for mu in MU_GRID
        ]
        assert_monotone(
            totals, direction="non-increasing", context=f"{name} vs mu"
        )

    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    def test_expected_runtime_non_decreasing_in_unit_size(self, name):
        totals = [
            run(make_spec(name, unit_size=size), backend="analytic").total_time
            for size in UNIT_SIZE_GRID
        ]
        assert_monotone(
            totals, direction="non-decreasing", context=f"{name} vs unit_size"
        )


class TestVectorizedMonotonicity:
    """Per-seed monotonicity on the vectorized engine.

    The heterogeneous schemes re-derive their placement loads from the
    cluster's straggling parameters, so the ``mu`` comparison (which would
    change the placement itself) only covers the schemes whose placement is
    cluster-independent; every scheme is covered by the ``unit_size``
    comparison and by the analytic checks above.
    """

    @pytest.mark.parametrize("name", sorted(set(SCHEME_MATRIX) - HETEROGENEOUS))
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_runtime_non_increasing_in_straggling(self, name, seed):
        backend = TimingSimBackend(engine="vectorized")
        totals = [
            backend.run(make_spec(name, mu_factor=mu, seed=seed)).total_time
            for mu in MU_GRID
        ]
        assert_monotone(
            totals, direction="non-increasing", context=f"{name} vs mu @ {seed}"
        )

    @pytest.mark.parametrize("name", sorted(SCHEME_MATRIX))
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_runtime_non_decreasing_in_unit_size(self, name, seed):
        backend = TimingSimBackend(engine="vectorized")
        totals = [
            backend.run(make_spec(name, unit_size=size, seed=seed)).total_time
            for size in UNIT_SIZE_GRID
        ]
        assert_monotone(
            totals,
            direction="non-decreasing",
            context=f"{name} vs unit_size @ {seed}",
        )
