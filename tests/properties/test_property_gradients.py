"""Property-based tests for gradient-kernel invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gradients.huber import HuberLoss
from repro.gradients.least_squares import LeastSquaresLoss
from repro.gradients.logistic import LogisticLoss

MODELS = [LogisticLoss(), LogisticLoss(l2=0.05), LeastSquaresLoss(), HuberLoss(delta=1.0)]


def problem_strategy(max_examples=12, max_features=6):
    """Generate (features, labels, weights) with bounded, finite values."""
    return st.integers(min_value=1, max_value=max_examples).flatmap(
        lambda m: st.integers(min_value=1, max_value=max_features).flatmap(
            lambda p: st.tuples(
                hnp.arrays(
                    float,
                    (m, p),
                    elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
                ),
                hnp.arrays(float, (m,), elements=st.sampled_from([-1.0, 1.0])),
                hnp.arrays(
                    float,
                    (p,),
                    elements=st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False),
                ),
            )
        )
    )


class TestGradientAdditivity:
    """The property distributed GD relies on: partial gradients are additive."""

    @settings(max_examples=40, deadline=None)
    @given(problem=problem_strategy(), model_index=st.integers(0, len(MODELS) - 1))
    def test_gradient_sum_splits_across_any_partition(self, problem, model_index):
        features, labels, weights = problem
        model = MODELS[model_index]
        m = features.shape[0]
        split = m // 2
        total = model.gradient_sum(weights, features, labels)
        left = model.gradient_sum(weights, features[:split], labels[:split]) if split else 0.0
        right = model.gradient_sum(weights, features[split:], labels[split:])
        np.testing.assert_allclose(left + right, total, rtol=1e-8, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(problem=problem_strategy(), model_index=st.integers(0, len(MODELS) - 1))
    def test_per_example_rows_sum_to_gradient_sum(self, problem, model_index):
        features, labels, weights = problem
        model = MODELS[model_index]
        per_example = model.per_example_gradients(weights, features, labels)
        assert per_example.shape == features.shape
        np.testing.assert_allclose(
            per_example.sum(axis=0),
            model.gradient_sum(weights, features, labels),
            rtol=1e-8,
            atol=1e-8,
        )

    @settings(max_examples=40, deadline=None)
    @given(problem=problem_strategy(), model_index=st.integers(0, len(MODELS) - 1))
    def test_loss_and_gradient_are_finite(self, problem, model_index):
        features, labels, weights = problem
        model = MODELS[model_index]
        assert np.isfinite(model.loss(weights, features, labels))
        assert np.all(np.isfinite(model.gradient(weights, features, labels)))

    @settings(max_examples=30, deadline=None)
    @given(problem=problem_strategy())
    def test_gradient_descent_step_does_not_increase_smooth_loss(self, problem):
        # For the 1-smooth logistic loss a step of size 1/(max row norm^2 * m)
        # can never increase the empirical risk.
        features, labels, weights = problem
        model = LogisticLoss()
        gradient = model.gradient(weights, features, labels)
        smoothness = max(float(np.max(np.sum(features**2, axis=1))), 1e-12)
        step = 1.0 / smoothness
        before = model.loss(weights, features, labels)
        after = model.loss(weights - step * gradient, features, labels)
        assert after <= before + 1e-9
