"""Property-based cross-backend harness.

Hypothesis generates random *valid* :class:`~repro.api.JobSpec`\\ s — scheme x
delay model x link mode x communication model x cluster size — and asserts
the repository's strongest correctness oracle on every draw:

* the loop and vectorized timing engines are **bit-identical** (exact float
  equality of every per-iteration metric), on stationary and dynamic
  clusters alike;
* the closed-form analytic backend agrees with the vectorized engine —
  exactly on deterministic clusters, within a Monte-Carlo tolerance on
  shift-exponential ones;
* the trial-batched engine (:func:`simulate_job_batch`) returns, for every
  trial, exactly the result a solo vectorized run produces at that trial's
  spawned seed with the shared plan — the sweep fast path's correctness
  oracle, on stationary and dynamic clusters alike.

The CI job runs this suite under the ``ci`` Hypothesis profile (registered in
``tests/conftest.py``) with derandomized, reproducible example generation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JobSpec, TimingSimBackend, run
from repro.cluster.dynamic import ChurnEvent, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.exceptions import SimulationError
from repro.stragglers.communication import (
    LinearCommunicationModel,
    ZeroCommunicationModel,
)
from repro.stragglers.models import (
    BimodalStragglerDelay,
    DeterministicDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TraceDelay,
)

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
# Homogeneous schemes: config factory given (num_units, num_workers).
SCHEME_FACTORIES = {
    "uncoded": lambda m, n: {"name": "uncoded"},
    "bcc": lambda m, n: {"name": "bcc", "load": max(2, m // 4)},
    "randomized": lambda m, n: {"name": "randomized", "load": max(2, m // 2)},
    "ignore-stragglers": lambda m, n: {
        "name": "ignore-stragglers",
        "wait_fraction": 0.75,
    },
    "cyclic-repetition": lambda m, n: {"name": "cyclic-repetition", "load": 3},
    "reed-solomon": lambda m, n: {"name": "reed-solomon", "load": 3},
    "fractional-repetition": lambda m, n: {
        "name": "fractional-repetition",
        "load": 3,
    },
}

HETEROGENEOUS_FACTORIES = {
    "generalized-bcc": lambda m, n: {"name": "generalized-bcc"},
    "load-balanced": lambda m, n: {"name": "load-balanced"},
}


def delay_models(draw, kind: str):
    """One delay-model instance of the drawn kind."""
    if kind == "shift-exponential":
        mu = draw(st.floats(0.5, 5.0), label="straggling")
        shift = draw(st.floats(0.0, 0.5), label="shift")
        return ShiftedExponentialDelay(straggling=mu, shift=shift)
    if kind == "deterministic":
        return DeterministicDelay(draw(st.floats(0.01, 0.5), label="rate"))
    if kind == "pareto":
        return ParetoDelay(
            alpha=draw(st.floats(1.5, 4.0), label="alpha"),
            scale=draw(st.floats(0.01, 0.2), label="scale"),
        )
    if kind == "bimodal":
        return BimodalStragglerDelay(
            seconds_per_example=draw(st.floats(0.01, 0.2), label="spe"),
            straggle_probability=draw(st.floats(0.0, 0.4), label="p"),
        )
    trace = draw(
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=6), label="trace"
    )
    return TraceDelay(trace)


DELAY_KINDS = ("shift-exponential", "deterministic", "pareto", "bimodal", "trace")


def draw_communication(draw):
    choice = draw(st.sampled_from(["zero", "linear", "jittered"]), label="comm")
    if choice == "zero":
        return ZeroCommunicationModel()
    jitter = draw(st.floats(0.001, 0.05), label="jitter") if choice == "jittered" else 0.0
    return LinearCommunicationModel(
        latency=draw(st.floats(0.0, 0.1), label="latency"),
        seconds_per_unit=draw(st.floats(0.0, 0.05), label="spu"),
        jitter=jitter,
    )


def draw_spec(draw, *, dynamic: bool) -> JobSpec:
    """A random valid timing JobSpec (optionally on a dynamic cluster)."""
    heterogeneous = draw(st.booleans(), label="heterogeneous")
    if heterogeneous:
        name = draw(st.sampled_from(sorted(HETEROGENEOUS_FACTORIES)), label="scheme")
        num_workers = draw(st.integers(6, 14), label="n")
        # Heterogeneous schemes derive loads from per-worker (mu, a) arrays;
        # the P2 allocation solver needs shifts bounded away from zero.
        stragglings = [
            draw(st.floats(0.5, 8.0), label=f"mu{i}") for i in range(num_workers)
        ]
        shifts = [
            draw(st.floats(0.05, 0.5), label=f"a{i}") for i in range(num_workers)
        ]
        base = ClusterSpec.shifted_exponential(
            stragglings, shifts, communication=draw_communication(draw)
        )
        factory = HETEROGENEOUS_FACTORIES[name]
        num_units = 2 * num_workers
    else:
        name = draw(st.sampled_from(sorted(SCHEME_FACTORIES)), label="scheme")
        if name == "fractional-repetition":
            # Load 3 partitions the workers into replication groups of 3.
            num_workers = draw(st.sampled_from([6, 9, 12]), label="n")
        else:
            num_workers = draw(st.integers(6, 14), label="n")
        kind = draw(st.sampled_from(DELAY_KINDS), label="delay")
        mixed = draw(st.booleans(), label="mixed")
        if mixed:
            models = [
                delay_models(draw, draw(st.sampled_from(DELAY_KINDS), label=f"k{i}"))
                for i in range(num_workers)
            ]
            from repro.cluster.spec import WorkerSpec

            base = ClusterSpec(
                workers=tuple(
                    WorkerSpec(compute=model, name=f"worker-{i}")
                    for i, model in enumerate(models)
                ),
                communication=draw_communication(draw),
            )
        else:
            base = ClusterSpec.homogeneous(
                num_workers, delay_models(draw, kind), draw_communication(draw)
            )
        factory = SCHEME_FACTORIES[name]
        # Coded schemes need m == n; give the rest a bigger unit pool.
        if name in ("cyclic-repetition", "reed-solomon", "fractional-repetition"):
            num_units = num_workers
        else:
            num_units = 2 * num_workers

    cluster = base
    if dynamic:
        process = draw(
            st.sampled_from(
                [
                    {"name": "markov", "slowdown": 4.0, "p_slow": 0.2},
                    {"name": "drift", "final_factor": 3.0},
                    {"name": "preempt", "preempt_probability": 0.1,
                     "recovery_iterations": 2},
                ]
            ),
            label="process",
        )
        events = []
        if draw(st.booleans(), label="with_events"):
            events.append(
                ChurnEvent(
                    "preempt",
                    worker=draw(st.integers(0, num_workers - 1), label="victim"),
                    iteration=draw(st.integers(0, 3), label="when"),
                    recovery=2,
                )
            )
        cluster = DynamicClusterSpec(base, dynamics=process, events=tuple(events))

    return JobSpec(
        scheme=factory(num_units, num_workers),
        cluster=cluster,
        num_units=num_units,
        num_iterations=draw(st.integers(1, 6), label="iterations"),
        unit_size=draw(st.sampled_from([1, 2, 10]), label="unit_size"),
        serialize_master_link=draw(st.booleans(), label="serialize"),
        seed=draw(st.integers(0, 2**31 - 1), label="seed"),
    )


def run_engine(spec: JobSpec, engine: str):
    try:
        return ("completed", run(spec, TimingSimBackend(engine=engine)))
    except SimulationError:
        return ("raised", None)


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #
class TestLoopVectorizedBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_stationary_specs_are_bit_identical(self, data):
        spec = draw_spec(data.draw, dynamic=False)
        loop_status, loop = run_engine(spec, "loop")
        vec_status, vectorized = run_engine(spec, "vectorized")
        assert loop_status == vec_status
        if loop_status == "completed":
            assert loop.summary() == vectorized.summary()
            assert list(loop.iterations) == list(vectorized.iterations)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_dynamic_specs_are_bit_identical(self, data):
        spec = draw_spec(data.draw, dynamic=True)
        loop_status, loop = run_engine(spec, "loop")
        vec_status, vectorized = run_engine(spec, "vectorized")
        assert loop_status == vec_status
        if loop_status == "completed":
            assert loop.summary() == vectorized.summary()
            assert list(loop.iterations) == list(vectorized.iterations)


class TestTrialBatchedBitIdentity:
    """simulate_job_batch slices == solo runs, over random valid JobSpecs."""

    @staticmethod
    def _assert_batch_matches_solo(spec: JobSpec, num_trials: int) -> None:
        from repro.simulation.vectorized import (
            simulate_job_batch,
            simulate_job_vectorized,
        )
        from repro.utils.rng import random_seed_sequence

        seeds = random_seed_sequence(spec.seed).spawn(num_trials)
        scheme = spec.resolve_scheme()
        try:
            batch = simulate_job_batch(
                scheme,
                spec.cluster,
                spec.resolved_num_units,
                spec.num_iterations,
                seeds,
                unit_size=spec.resolved_unit_size,
                serialize_master_link=spec.serialize_master_link,
            )
        except SimulationError:
            batch = None
        # Re-derive the shared plan exactly as the batch does (from
        # seeds[0]); trial 0 continues that generator, later trials start
        # fresh at their own child.
        generator = np.random.default_rng(seeds[0])
        plan = scheme.build_feasible_plan(
            spec.resolved_num_units, spec.cluster.num_workers, generator
        )
        solos = []
        failed = False
        for trial in range(num_trials):
            rng = generator if trial == 0 else np.random.default_rng(seeds[trial])
            try:
                solos.append(
                    simulate_job_vectorized(
                        plan,
                        spec.cluster,
                        spec.resolved_num_units,
                        spec.num_iterations,
                        rng,
                        unit_size=spec.resolved_unit_size,
                        serialize_master_link=spec.serialize_master_link,
                    )
                )
            except SimulationError:
                failed = True
                break
        if batch is None:
            # The batch fails as one unit: some trial must fail solo too.
            assert failed
            return
        assert not failed
        for trial, solo in enumerate(solos):
            assert list(batch[trial].iterations) == list(solo.iterations)
            assert batch[trial].summary() == solo.summary()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_stationary_trials_match_solo_runs(self, data):
        spec = draw_spec(data.draw, dynamic=False)
        num_trials = data.draw(st.integers(2, 4), label="trials")
        self._assert_batch_matches_solo(spec, num_trials)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_dynamic_trials_match_solo_runs(self, data):
        spec = draw_spec(data.draw, dynamic=True)
        num_trials = data.draw(st.integers(2, 3), label="trials")
        self._assert_batch_matches_solo(spec, num_trials)


class TestAnalyticAgreesWithSimulation:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_deterministic_clusters_agree_exactly(self, data):
        # With deterministic workers, a jitter-free link, and a scheme whose
        # stopping rule is deterministic (no random placement), the analytic
        # backend is exact, so the tolerance is numerical only. (BCC's
        # threshold is random through its placement; it is covered by the
        # tolerance-based cross-check below.)
        num_workers = data.draw(st.integers(6, 14), label="n")
        rate = data.draw(st.floats(0.01, 0.5), label="rate")
        cluster = ClusterSpec.homogeneous(
            num_workers,
            DeterministicDelay(rate),
            LinearCommunicationModel(
                latency=data.draw(st.floats(0.0, 0.1), label="latency"),
                seconds_per_unit=data.draw(st.floats(0.0, 0.05), label="spu"),
            ),
        )
        name = data.draw(
            st.sampled_from(["uncoded", "ignore-stragglers"]), label="scheme"
        )
        num_units = 2 * num_workers
        spec = JobSpec(
            scheme=SCHEME_FACTORIES[name](num_units, num_workers),
            cluster=cluster,
            num_units=num_units,
            num_iterations=3,
            unit_size=data.draw(st.sampled_from([1, 5]), label="unit_size"),
            serialize_master_link=data.draw(st.booleans(), label="serialize"),
            seed=data.draw(st.integers(0, 2**31 - 1), label="seed"),
        )
        analytic = run(spec, backend="analytic")
        simulated = run(spec, TimingSimBackend(engine="vectorized"))
        assert analytic.total_time == pytest.approx(
            simulated.total_time, rel=1e-6, abs=1e-9
        )
        assert analytic.average_recovery_threshold == pytest.approx(
            simulated.average_recovery_threshold, rel=1e-6
        )

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_shift_exponential_clusters_agree_within_tolerance(self, data):
        # Monte-Carlo cross-check: the sample mean over enough iterations
        # must land near the closed form for any drawn parameters.
        num_workers = data.draw(st.integers(8, 16), label="n")
        cluster = ClusterSpec.homogeneous(
            num_workers,
            ShiftedExponentialDelay(
                straggling=data.draw(st.floats(0.5, 4.0), label="mu"),
                shift=data.draw(st.floats(0.1, 0.5), label="shift"),
            ),
            LinearCommunicationModel(
                latency=0.01,
                seconds_per_unit=data.draw(st.floats(0.0, 0.02), label="spu"),
            ),
        )
        name = data.draw(st.sampled_from(["uncoded", "bcc"]), label="scheme")
        num_units = 2 * num_workers
        base = JobSpec(
            scheme=SCHEME_FACTORIES[name](num_units, num_workers),
            cluster=cluster,
            num_units=num_units,
            num_iterations=1,
            unit_size=2,
            serialize_master_link=data.draw(st.booleans(), label="serialize"),
            seed=0,
        )
        analytic = run(base, backend="analytic")
        # Each job freezes one random placement; the analytic estimate
        # averages over placements, so the Monte-Carlo side averages several
        # independent jobs. The serialized-link closed form is a mean-field
        # approximation, hence the generous (but still drift-catching) bar.
        iterations, trials = 200, 4
        backend = TimingSimBackend(engine="vectorized")
        means = [
            run(
                base.replace(num_iterations=iterations, seed=10_000 + trial),
                backend,
            ).total_time
            / iterations
            for trial in range(trials)
        ]
        mean_simulated = float(np.mean(means))
        assert analytic.total_time == pytest.approx(mean_simulated, rel=0.35), (
            f"{name}: analytic {analytic.total_time:.4f} vs Monte-Carlo "
            f"{mean_simulated:.4f}"
        )
