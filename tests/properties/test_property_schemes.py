"""Property-based tests for scheme-level invariants.

The central invariant of the whole library: *whatever the scheme and whatever
order workers respond in, once the master declares completion its decoded
gradient equals the exact full gradient.*
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.base import Dataset
from repro.gradients.evaluation import full_gradient
from repro.gradients.least_squares import LeastSquaresLoss
from repro.schemes.bcc import BCCScheme
from repro.schemes.coded import CyclicRepetitionScheme, ReedSolomonScheme
from repro.schemes.randomized import SimpleRandomizedScheme
from repro.schemes.uncoded import UncodedScheme
from repro.simulation.execution import distributed_gradient


def _dataset(rng, num_examples, num_features=4):
    features = rng.standard_normal((num_examples, num_features))
    labels = rng.standard_normal(num_examples)
    return Dataset(features, labels)


class TestDecodedGradientExactness:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_bcc_exact_for_any_arrival_order(self, data, seed):
        rng = np.random.default_rng(seed)
        num_units = data.draw(st.integers(min_value=2, max_value=30), label="m")
        load = data.draw(st.integers(min_value=1, max_value=num_units), label="r")
        num_batches = -(-num_units // load)
        # BCC needs roughly num_batches * H_num_batches workers for coverage;
        # draw comfortably above that so a feasible placement exists.
        minimum_workers = 3 * num_batches + 5
        num_workers = data.draw(
            st.integers(min_value=minimum_workers, max_value=minimum_workers + 40),
            label="n",
        )
        dataset = _dataset(rng, num_units)
        model = LeastSquaresLoss()
        weights = rng.standard_normal(4)
        plan = BCCScheme(load).build_feasible_plan(num_units, num_workers, rng=rng)
        order = rng.permutation(num_workers)
        gradient, heard = distributed_gradient(plan, model, dataset, weights, order)
        np.testing.assert_allclose(
            gradient, full_gradient(model, dataset, weights), atol=1e-8
        )
        assert num_batches <= heard <= num_workers

    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_randomized_and_uncoded_exact(self, data, seed):
        rng = np.random.default_rng(seed)
        num_units = data.draw(st.integers(min_value=2, max_value=25), label="m")
        load = data.draw(st.integers(min_value=1, max_value=num_units), label="r")
        num_workers = data.draw(st.integers(min_value=2, max_value=25), label="n")
        dataset = _dataset(rng, num_units)
        model = LeastSquaresLoss()
        weights = rng.standard_normal(4)
        expected = full_gradient(model, dataset, weights)

        if num_workers <= num_units:
            uncoded_plan = UncodedScheme().build_plan(num_units, num_workers)
            gradient, _ = distributed_gradient(
                uncoded_plan, model, dataset, weights, rng.permutation(num_workers)
            )
            np.testing.assert_allclose(gradient, expected, atol=1e-8)

        randomized = SimpleRandomizedScheme(load)
        try:
            plan = randomized.build_feasible_plan(num_units, num_workers, rng=rng)
        except Exception:
            # Coverage may be impossible (e.g. load * workers < units); the
            # scheme is allowed to refuse such configurations.
            return
        gradient, _ = distributed_gradient(
            plan, model, dataset, weights, rng.permutation(num_workers)
        )
        np.testing.assert_allclose(gradient, expected, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_coded_schemes_exact_for_any_arrival_order(self, data, seed):
        rng = np.random.default_rng(seed)
        n = data.draw(st.integers(min_value=2, max_value=12), label="n")
        load = data.draw(st.integers(min_value=1, max_value=n), label="r")
        scheme_class = data.draw(
            st.sampled_from([CyclicRepetitionScheme, ReedSolomonScheme]), label="scheme"
        )
        dataset = _dataset(rng, n)
        model = LeastSquaresLoss()
        weights = rng.standard_normal(4)
        plan = scheme_class(load).build_plan(n, n, rng=rng)
        order = rng.permutation(n)
        gradient, heard = distributed_gradient(plan, model, dataset, weights, order)
        np.testing.assert_allclose(
            gradient, full_gradient(model, dataset, weights), atol=1e-6
        )
        assert heard <= n

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_completion_is_monotone_in_received_set(self, seed):
        # Feeding more workers can never un-complete an aggregator.
        rng = np.random.default_rng(seed)
        plan = BCCScheme(2).build_feasible_plan(10, 15, rng=rng)
        aggregator = plan.new_aggregator()
        became_complete_at = None
        for position, worker in enumerate(rng.permutation(15)):
            complete = aggregator.receive(int(worker), None)
            if complete and became_complete_at is None:
                became_complete_at = position
            if became_complete_at is not None:
                assert aggregator.is_complete()
