"""Tests for the master-side aggregators."""

import numpy as np
import pytest

from repro.coding.assignment import DataAssignment
from repro.coding.cyclic_repetition import CyclicRepetitionCode
from repro.coding.fractional import FractionalRepetitionCode
from repro.exceptions import CoverageError, DecodingError
from repro.schemes.base import (
    BatchCoverageAggregator,
    CodedAggregator,
    CountAggregator,
    UnitCoverageAggregator,
)


class TestCountAggregator:
    def test_waits_for_required_set(self):
        aggregator = CountAggregator(required_workers=[0, 2])
        assert not aggregator.receive(0, np.array([1.0]))
        assert not aggregator.receive(1, np.array([9.0]))  # not required, ignored
        assert aggregator.receive(2, np.array([2.0]))
        assert aggregator.is_complete()

    def test_decode_sums_required_messages_only(self):
        aggregator = CountAggregator(required_workers=[0, 1])
        aggregator.receive(0, np.array([1.0, 2.0]))
        aggregator.receive(1, np.array([3.0, 4.0]))
        np.testing.assert_allclose(aggregator.decode(), [4.0, 6.0])

    def test_duplicate_messages_not_double_counted(self):
        aggregator = CountAggregator(required_workers=[0, 1])
        aggregator.receive(0, np.array([1.0]))
        aggregator.receive(0, np.array([1.0]))
        assert not aggregator.is_complete()
        aggregator.receive(1, np.array([1.0]))
        np.testing.assert_allclose(aggregator.decode(), [2.0])

    def test_decode_before_complete_raises(self):
        aggregator = CountAggregator(required_workers=[0, 1])
        aggregator.receive(0, np.array([1.0]))
        with pytest.raises(DecodingError):
            aggregator.decode()

    def test_timing_only_mode_cannot_decode(self):
        aggregator = CountAggregator(required_workers=[0])
        aggregator.receive(0, None)
        assert aggregator.is_complete()
        with pytest.raises(DecodingError):
            aggregator.decode()

    def test_requires_some_workers(self):
        with pytest.raises(CoverageError):
            CountAggregator(required_workers=[])

    def test_workers_heard_counts_all_arrivals(self):
        aggregator = CountAggregator(required_workers=[0, 1])
        aggregator.receive(5, np.array([1.0]))
        aggregator.receive(0, np.array([1.0]))
        aggregator.receive(1, np.array([1.0]))
        assert aggregator.workers_heard == 3
        assert aggregator.messages_kept == 2

    def test_late_arrivals_after_completion_ignored(self):
        aggregator = CountAggregator(required_workers=[0])
        aggregator.receive(0, np.array([2.0]))
        aggregator.receive(1, np.array([7.0]))
        assert aggregator.workers_heard == 1
        np.testing.assert_allclose(aggregator.decode(), [2.0])


class TestBatchCoverageAggregator:
    def test_bcc_master_rule(self):
        # 3 batches; workers 0..4 chose batches [0, 1, 1, 2, 0].
        aggregator = BatchCoverageAggregator(3, worker_batches=[0, 1, 1, 2, 0])
        assert not aggregator.receive(0, np.array([1.0]))
        assert not aggregator.receive(1, np.array([2.0]))
        assert not aggregator.receive(2, np.array([99.0]))  # duplicate batch 1, discarded
        assert aggregator.receive(3, np.array([3.0]))
        np.testing.assert_allclose(aggregator.decode(), [6.0])
        assert aggregator.messages_kept == 3
        assert aggregator.workers_heard == 4
        assert aggregator.batches_covered == 3

    def test_decode_before_coverage_raises(self):
        aggregator = BatchCoverageAggregator(2, worker_batches=[0, 1])
        aggregator.receive(0, np.array([1.0]))
        with pytest.raises(DecodingError):
            aggregator.decode()

    def test_invalid_batch_count(self):
        with pytest.raises(CoverageError):
            BatchCoverageAggregator(0, worker_batches=[])


class TestUnitCoverageAggregator:
    @pytest.fixture
    def assignment(self):
        return DataAssignment(
            num_examples=4,
            assignments=(np.array([0, 1]), np.array([1, 2]), np.array([2, 3])),
        )

    def test_coverage_and_decode_keeps_first_copy(self, assignment):
        aggregator = UnitCoverageAggregator(4, assignment)
        message_0 = np.array([[1.0, 0.0], [2.0, 0.0]])  # units 0, 1
        message_1 = np.array([[9.0, 9.0], [3.0, 0.0]])  # units 1 (dup), 2
        message_2 = np.array([[8.0, 8.0], [4.0, 0.0]])  # units 2 (dup), 3
        assert not aggregator.receive(0, message_0)
        assert not aggregator.receive(1, message_1)
        assert aggregator.receive(2, message_2)
        # Unit 1 keeps worker 0's copy, unit 2 keeps worker 1's copy.
        np.testing.assert_allclose(aggregator.decode(), [1 + 2 + 3 + 4, 0.0])
        assert aggregator.units_covered == 4

    def test_message_shape_validated(self, assignment):
        aggregator = UnitCoverageAggregator(4, assignment)
        with pytest.raises(DecodingError):
            aggregator.receive(0, np.array([[1.0, 2.0]]))  # expected 2 rows

    def test_worker_with_no_new_units_not_kept(self, assignment):
        aggregator = UnitCoverageAggregator(4, assignment)
        aggregator.receive(1, np.array([[1.0, 1.0], [2.0, 2.0]]))
        kept_before = aggregator.messages_kept
        aggregator.receive(1, np.array([[1.0, 1.0], [2.0, 2.0]]))
        assert aggregator.messages_kept == kept_before

    def test_timing_only_mode(self, assignment):
        aggregator = UnitCoverageAggregator(4, assignment)
        aggregator.receive(0, None)
        aggregator.receive(2, None)
        assert aggregator.is_complete()
        with pytest.raises(DecodingError):
            aggregator.decode()


class TestCodedAggregator:
    def test_completes_at_worst_case_threshold(self, rng):
        code = CyclicRepetitionCode(num_workers=6, num_stragglers=2, seed=0)
        aggregator = CodedAggregator(code)
        gradients = rng.standard_normal((6, 3))
        workers = [5, 0, 3, 2]
        complete_flags = []
        for worker in workers:
            complete_flags.append(
                aggregator.receive(worker, code.encode(worker, gradients))
            )
        assert complete_flags[-1]
        assert not any(complete_flags[:-1])
        np.testing.assert_allclose(
            aggregator.decode(), gradients.sum(axis=0), atol=1e-8
        )

    def test_opportunistic_fractional_completion(self, rng):
        code = FractionalRepetitionCode(num_workers=8, num_stragglers=3)
        aggregator = CodedAggregator(code)
        gradients = rng.standard_normal((8, 2))
        group = code.groups[0]
        aggregator.receive(group[0], code.encode(group[0], gradients))
        complete = aggregator.receive(group[1], code.encode(group[1], gradients))
        assert complete  # far below the worst-case threshold of 5 workers
        np.testing.assert_allclose(
            aggregator.decode(), gradients.sum(axis=0), atol=1e-10
        )

    def test_decode_before_complete_raises(self):
        code = CyclicRepetitionCode(num_workers=4, num_stragglers=1, seed=0)
        aggregator = CodedAggregator(code)
        aggregator.receive(0, np.zeros(2))
        with pytest.raises(DecodingError):
            aggregator.decode()

    def test_check_every_throttles_decodability_checks(self):
        """The throttle skips rank checks between multiples of check_every.

        The identity code completes only with every worker present while its
        (claimed) worst-case threshold sits at half of them, so the window of
        failing checks is wide; an unthrottled aggregator checks on every
        arrival in that window, a throttled one on every k-th.
        """
        from repro.coding.linear_code import LinearGradientCode

        n = 16
        code = LinearGradientCode(np.eye(n), name="identity")
        code.num_stragglers = n // 2

        def feed(check_every: int) -> CodedAggregator:
            aggregator = CodedAggregator(code=code, check_every=check_every)
            for worker in range(n):
                if aggregator.receive(worker, None):
                    break
            return aggregator

        eager = feed(1)
        throttled = feed(3)
        # Completion is never missed: the final worker is always checked.
        assert eager.is_complete() and throttled.is_complete()
        assert eager.workers_heard == throttled.workers_heard == n
        assert eager.decodability_checks == n - n // 2 + 1  # 8..16 inclusive
        assert throttled.decodability_checks == 4  # counts 8, 11, 14, 16

    def test_check_every_does_not_change_worst_case_completion(self, rng):
        code = CyclicRepetitionCode(num_workers=6, num_stragglers=2, seed=0)
        gradients = rng.standard_normal((6, 3))
        for check_every in (1, 3):
            aggregator = CodedAggregator(code, check_every=check_every)
            for worker in (5, 0, 3, 2):
                complete = aggregator.receive(worker, code.encode(worker, gradients))
            assert complete
            np.testing.assert_allclose(
                aggregator.decode(), gradients.sum(axis=0), atol=1e-8
            )

    def test_opportunistic_codes_check_every_arrival(self):
        code = FractionalRepetitionCode(num_workers=8, num_stragglers=3)
        aggregator = CodedAggregator(code, check_every=5)
        group = code.groups[0]
        aggregator.receive(group[0], None)
        assert aggregator.receive(group[1], None)  # throttle must not delay this
        assert aggregator.decodability_checks == 2
