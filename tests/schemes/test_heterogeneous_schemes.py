"""Tests for the generalized BCC and load-balanced heterogeneous schemes."""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.schemes.heterogeneous import GeneralizedBCCScheme, LoadBalancedScheme


@pytest.fixture
def cluster():
    return ClusterSpec.paper_fig5_cluster(num_workers=10, num_fast=2, shift=2.0)


class TestGeneralizedBCC:
    def test_requires_exactly_one_source_of_loads(self, cluster):
        with pytest.raises(ConfigurationError):
            GeneralizedBCCScheme()
        with pytest.raises(ConfigurationError):
            GeneralizedBCCScheme(loads=[1, 2], cluster=cluster)

    def test_explicit_loads_respected(self, rng):
        loads = [3, 0, 2, 5]
        scheme = GeneralizedBCCScheme(loads=loads)
        plan = scheme.build_plan(num_units=10, num_workers=4, rng=rng)
        assert plan.unit_assignment.loads.tolist() == loads
        np.testing.assert_allclose(plan.message_sizes, np.array(loads, dtype=float))

    def test_explicit_loads_length_checked(self):
        scheme = GeneralizedBCCScheme(loads=[1, 2, 3])
        with pytest.raises(ConfigurationError):
            scheme.build_plan(num_units=5, num_workers=4)

    def test_negative_loads_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneralizedBCCScheme(loads=[-1, 2])

    def test_cluster_derived_loads_favor_fast_workers(self, cluster, rng):
        scheme = GeneralizedBCCScheme(cluster=cluster)
        loads = scheme.resolve_loads(num_units=50, num_workers=10)
        # The last two workers are the fast ones (mu = 20 vs 1).
        assert loads[-1] > loads[0]

    def test_cluster_worker_count_checked(self, cluster):
        scheme = GeneralizedBCCScheme(cluster=cluster)
        with pytest.raises(ConfigurationError):
            scheme.build_plan(num_units=20, num_workers=5)

    def test_plan_feasible_and_stops_at_coverage(self, cluster, rng):
        scheme = GeneralizedBCCScheme(cluster=cluster)
        plan = scheme.build_feasible_plan(30, 10, rng=rng)
        aggregator = plan.new_aggregator()
        covered = np.zeros(30, dtype=bool)
        for worker in range(10):
            complete = aggregator.receive(worker, None)
            covered[plan.worker_units(worker)] = True
            if covered.all():
                assert complete
                break
        assert aggregator.is_complete()

    def test_loads_capped_at_num_units(self, rng):
        scheme = GeneralizedBCCScheme(loads=[100, 100])
        plan = scheme.build_plan(num_units=10, num_workers=2, rng=rng)
        assert plan.unit_assignment.computational_load <= 10

    def test_target_scale_controls_total_load(self, cluster):
        small = GeneralizedBCCScheme(cluster=cluster, target_scale=1.0).resolve_loads(40, 10)
        large = GeneralizedBCCScheme(cluster=cluster, target_scale=4.0).resolve_loads(40, 10)
        assert large.sum() > small.sum()


class TestLoadBalanced:
    def test_requires_exactly_one_source(self, cluster):
        with pytest.raises(ConfigurationError):
            LoadBalancedScheme()
        with pytest.raises(ConfigurationError):
            LoadBalancedScheme(cluster=cluster, loads=[1, 2])

    def test_explicit_loads_must_sum_to_units(self):
        scheme = LoadBalancedScheme(loads=[3, 3])
        with pytest.raises(ConfigurationError):
            scheme.build_plan(num_units=7, num_workers=2)

    def test_disjoint_full_coverage(self, cluster, rng):
        scheme = LoadBalancedScheme(cluster=cluster)
        plan = scheme.build_plan(num_units=40, num_workers=10, rng=rng)
        assert plan.unit_assignment.is_complete()
        assert plan.unit_assignment.example_multiplicity().max() == 1
        assert plan.unit_assignment.total_load == 40

    def test_waits_for_all_loaded_workers(self, rng):
        scheme = LoadBalancedScheme(loads=[2, 0, 3])
        plan = scheme.build_plan(num_units=5, num_workers=3, rng=rng)
        aggregator = plan.new_aggregator()
        assert not aggregator.receive(0, None)
        # Worker 1 holds nothing; hearing from it changes nothing.
        assert not aggregator.receive(1, None)
        assert aggregator.receive(2, None)

    def test_proportional_loads_from_cluster(self, cluster, rng):
        scheme = LoadBalancedScheme(cluster=cluster)
        loads = scheme.resolve_loads(num_units=95 + 2 * 20 + 3, num_workers=10)
        assert loads.sum() == 95 + 2 * 20 + 3
        assert loads[-1] > loads[0]
