"""Tests for the ignore-stragglers (approximate gradient) extension scheme."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_linear_regression_data
from repro.exceptions import ConfigurationError, DecodingError
from repro.gradients.evaluation import full_gradient
from repro.gradients.least_squares import LeastSquaresLoss
from repro.schemes.approximate import IgnoreStragglersScheme, PartialSumAggregator
from repro.schemes.registry import make_scheme
from repro.simulation.execution import distributed_gradient


class TestPartialSumAggregator:
    def test_completes_after_required_count(self):
        aggregator = PartialSumAggregator(
            required_count=2, worker_example_counts=np.array([3, 3, 3]), total_examples=9
        )
        assert not aggregator.receive(0, np.array([1.0]))
        assert aggregator.receive(2, np.array([2.0]))

    def test_decode_rescales_partial_sum(self):
        aggregator = PartialSumAggregator(
            required_count=2, worker_example_counts=np.array([3, 3, 3]), total_examples=9
        )
        aggregator.receive(0, np.array([1.0]))
        aggregator.receive(1, np.array([2.0]))
        # Covered 6 of 9 examples -> scale 1.5.
        np.testing.assert_allclose(aggregator.decode(), [4.5])
        assert aggregator.covered_examples == 6

    def test_idle_workers_do_not_count(self):
        aggregator = PartialSumAggregator(
            required_count=1, worker_example_counts=np.array([0, 4]), total_examples=4
        )
        assert not aggregator.receive(0, np.array([7.0]))
        assert aggregator.receive(1, np.array([1.0]))
        np.testing.assert_allclose(aggregator.decode(), [1.0])

    def test_decode_before_completion_raises(self):
        aggregator = PartialSumAggregator(
            required_count=2, worker_example_counts=np.array([1, 1]), total_examples=2
        )
        aggregator.receive(0, np.array([1.0]))
        with pytest.raises(DecodingError):
            aggregator.decode()


class TestIgnoreStragglersScheme:
    def test_wait_fraction_validation(self):
        with pytest.raises((ValueError, ConfigurationError)):
            IgnoreStragglersScheme(wait_fraction=0.0)
        with pytest.raises(ValueError):
            IgnoreStragglersScheme(wait_fraction=1.2)

    def test_full_fraction_equals_uncoded_behaviour(self, rng):
        dataset, _ = make_linear_regression_data(20, 3, seed=0)
        model = LeastSquaresLoss()
        weights = rng.standard_normal(3)
        plan = IgnoreStragglersScheme(wait_fraction=1.0).build_plan(20, 5)
        gradient, heard = distributed_gradient(
            plan, model, dataset, weights, rng.permutation(5)
        )
        assert heard == 5
        np.testing.assert_allclose(
            gradient, full_gradient(model, dataset, weights), atol=1e-10
        )

    def test_partial_fraction_stops_early_and_approximates(self, rng):
        dataset, _ = make_linear_regression_data(40, 4, seed=1)
        model = LeastSquaresLoss()
        weights = rng.standard_normal(4)
        plan = IgnoreStragglersScheme(wait_fraction=0.5).build_plan(40, 8)
        gradient, heard = distributed_gradient(
            plan, model, dataset, weights, rng.permutation(8)
        )
        assert heard == 4
        exact = full_gradient(model, dataset, weights)
        # The estimate is not exact but must be in the right ballpark
        # (within ~the norm of the exact gradient for Gaussian data).
        assert np.linalg.norm(gradient - exact) < np.linalg.norm(exact)

    def test_expected_threshold_and_load(self):
        scheme = IgnoreStragglersScheme(wait_fraction=0.6)
        assert scheme.expected_recovery_threshold(100, 50) == 30.0
        assert scheme.expected_communication_load(100, 50) == 30.0

    def test_registry_entry(self):
        assert isinstance(make_scheme("ignore-stragglers"), IgnoreStragglersScheme)

    def test_timing_only_mode(self):
        plan = IgnoreStragglersScheme(wait_fraction=0.5).build_plan(10, 4)
        aggregator = plan.new_aggregator()
        assert not aggregator.receive(0, None)
        assert aggregator.receive(1, None)
        with pytest.raises(DecodingError):
            aggregator.decode()


class TestTimeBudgetAblation:
    def test_exactness_under_time_budget_shapes(self):
        from repro.experiments.ablations import exactness_under_time_budget

        rows = exactness_under_time_budget(
            time_budgets=(0.5, 4.0), max_iterations=60, rng=0
        )
        assert [row["time_budget"] for row in rows] == [0.5, 4.0]
        # Losses fall as the budget grows, for every scheme.
        for key in ("uncoded_loss", "ignore_stragglers_loss", "bcc_loss"):
            assert rows[1][key] <= rows[0][key] + 1e-9
        # Ignoring stragglers beats waiting for everyone under a tight budget,
        # and exact BCC is at least as good as the approximation at the
        # largest budget.
        assert rows[0]["ignore_stragglers_loss"] <= rows[0]["uncoded_loss"] + 1e-9
        assert rows[1]["bcc_loss"] <= rows[1]["ignore_stragglers_loss"] + 1e-6
