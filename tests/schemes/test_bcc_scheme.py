"""Tests for the BCCScheme."""

import numpy as np
import pytest

from repro.analysis.coupon import harmonic_number
from repro.exceptions import ConfigurationError, CoverageError
from repro.schemes.bcc import BCCScheme


class TestPlanConstruction:
    def test_plan_shapes(self, rng):
        plan = BCCScheme(load=5).build_plan(num_units=20, num_workers=10, rng=rng)
        assert plan.scheme_name == "bcc"
        assert plan.num_workers == 10
        assert plan.num_units == 20
        np.testing.assert_allclose(plan.message_sizes, 1.0)
        # Every worker holds exactly one batch of 5 units.
        assert plan.computational_load_units == 5

    def test_batch_choices_metadata(self, rng):
        plan = BCCScheme(load=5).build_plan(20, 10, rng)
        choices = plan.metadata["batch_choices"]
        assert choices.shape == (10,)
        assert choices.min() >= 0 and choices.max() < 4

    def test_load_larger_than_units_rejected(self):
        with pytest.raises(ConfigurationError):
            BCCScheme(load=30).build_plan(20, 10)

    def test_more_batches_than_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            BCCScheme(load=2).build_plan(num_units=20, num_workers=5)

    def test_feasible_plan_always_covers(self):
        scheme = BCCScheme(load=2)
        for seed in range(20):
            plan = scheme.build_feasible_plan(10, 12, rng=seed)
            assert plan.can_ever_complete()

    def test_fewer_workers_than_batches_rejected(self):
        # With fewer workers than batches coverage is impossible, so the plan
        # is refused at construction time rather than hanging the master.
        scheme = BCCScheme(load=1)
        with pytest.raises(ConfigurationError):
            scheme.build_plan(num_units=5, num_workers=3)

    def test_plan_can_report_infeasible_placement(self):
        # A concrete placement that misses a batch is detected by
        # can_ever_complete(); build_feasible_plan re-draws until covered.
        scheme = BCCScheme(load=2)
        for seed in range(30):
            plan = scheme.build_plan(num_units=10, num_workers=5, rng=seed)
            assert plan.can_ever_complete() == plan.unit_assignment.is_complete()


class TestAggregation:
    def test_master_stops_at_coverage(self, rng):
        scheme = BCCScheme(load=4)
        plan = scheme.build_feasible_plan(8, 10, rng=rng)  # 2 batches
        aggregator = plan.new_aggregator()
        choices = plan.metadata["batch_choices"]
        # Feed workers until both batches seen; completion must coincide with
        # the first time both batch ids appear in the fed prefix.
        seen = set()
        for worker in range(10):
            complete = aggregator.receive(worker, None)
            seen.add(int(choices[worker]))
            if len(seen) == 2:
                assert complete
                break
            assert not complete

    def test_encoder_sums_unit_gradients(self, rng):
        plan = BCCScheme(load=3).build_plan(9, 5, rng)
        unit_gradients = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            plan.encode(0, unit_gradients), unit_gradients.sum(axis=0)
        )


class TestFormulas:
    def test_expected_recovery_threshold(self):
        scheme = BCCScheme(load=10)
        assert scheme.expected_recovery_threshold(100, 100) == pytest.approx(
            10 * harmonic_number(10)
        )
        assert scheme.expected_communication_load(100, 100) == pytest.approx(
            10 * harmonic_number(10)
        )

    def test_empirical_threshold_matches_coupon_collector(self, rng):
        # Monte-Carlo the number of workers heard and compare with N * H_N.
        scheme = BCCScheme(load=5)
        num_units, num_workers = 20, 200  # 4 batches, plenty of workers
        counts = []
        for _ in range(300):
            plan = scheme.build_feasible_plan(num_units, num_workers, rng=rng)
            aggregator = plan.new_aggregator()
            order = rng.permutation(num_workers)
            for heard, worker in enumerate(order, start=1):
                if aggregator.receive(int(worker), None):
                    counts.append(heard)
                    break
        expected = 4 * harmonic_number(4)
        assert np.mean(counts) == pytest.approx(expected, rel=0.08)

    def test_repr(self):
        assert "load=7" in repr(BCCScheme(load=7))
