"""Tests for the coded schemes (cyclic repetition, Reed-Solomon, fractional repetition)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.schemes.coded import (
    CyclicRepetitionScheme,
    FractionalRepetitionScheme,
    ReedSolomonScheme,
)


@pytest.mark.parametrize(
    "scheme_class", [CyclicRepetitionScheme, ReedSolomonScheme], ids=["cr", "rs"]
)
class TestWorstCaseCodedSchemes:
    def test_plan_properties(self, scheme_class, rng):
        plan = scheme_class(load=3).build_plan(num_units=9, num_workers=9, rng=rng)
        assert plan.computational_load_units == 3
        np.testing.assert_allclose(plan.message_sizes, 1.0)
        assert plan.unit_assignment.is_complete()

    def test_requires_m_equals_n(self, scheme_class):
        with pytest.raises(ConfigurationError):
            scheme_class(load=2).build_plan(num_units=10, num_workers=5)

    def test_load_validation(self, scheme_class):
        with pytest.raises(ConfigurationError):
            scheme_class(load=10).build_plan(num_units=6, num_workers=6)

    def test_master_stops_at_n_minus_s_workers(self, scheme_class, rng):
        load = 3
        scheme = scheme_class(load=load)
        plan = scheme.build_plan(num_units=8, num_workers=8, rng=rng)
        aggregator = plan.new_aggregator()
        order = rng.permutation(8)
        heard = 0
        for worker in order:
            heard += 1
            if aggregator.receive(int(worker), None):
                break
        assert heard == 8 - (load - 1)

    def test_expected_threshold_formula(self, scheme_class):
        scheme = scheme_class(load=10)
        assert scheme.expected_recovery_threshold(50, 50) == 41.0
        assert scheme.expected_communication_load(50, 50) == 41.0

    def test_encoder_applies_code_coefficients(self, scheme_class, rng):
        scheme = scheme_class(load=2)
        plan = scheme.build_plan(num_units=5, num_workers=5, rng=rng)
        code = plan.metadata["code"]
        gradients = rng.standard_normal((2, 3))
        worker = 1
        support = code.support(worker)
        expected = code.encoding_matrix[worker, support] @ gradients
        np.testing.assert_allclose(plan.encode(worker, gradients), expected)


class TestFractionalRepetitionScheme:
    def test_divisibility_requirement(self):
        with pytest.raises(ConfigurationError):
            FractionalRepetitionScheme(load=4).build_plan(num_units=6, num_workers=6)

    def test_plan_and_early_stop(self, rng):
        scheme = FractionalRepetitionScheme(load=2)
        plan = scheme.build_plan(num_units=6, num_workers=6, rng=rng)
        assert plan.computational_load_units == 2
        code = plan.metadata["code"]
        aggregator = plan.new_aggregator()
        group = code.groups[0]
        aggregator.receive(int(group[0]), None)
        for member in group[1:]:
            complete = aggregator.receive(int(member), None)
        assert complete

    def test_worst_case_never_exceeds_n_minus_s(self, rng):
        scheme = FractionalRepetitionScheme(load=3)
        plan = scheme.build_plan(num_units=9, num_workers=9, rng=rng)
        for seed in range(10):
            order = np.random.default_rng(seed).permutation(9)
            aggregator = plan.new_aggregator()
            heard = 0
            for worker in order:
                heard += 1
                if aggregator.receive(int(worker), None):
                    break
            assert heard <= 9 - 2
