"""Tests for the uncoded, simple randomized and registry-constructed schemes."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.schemes.randomized import SimpleRandomizedScheme
from repro.schemes.registry import make_scheme, scheme_registry
from repro.schemes.uncoded import UncodedScheme


class TestUncodedScheme:
    def test_plan_is_disjoint_partition(self):
        plan = UncodedScheme().build_plan(12, 4)
        assert plan.unit_assignment.example_multiplicity().max() == 1
        assert plan.unit_assignment.is_complete()
        np.testing.assert_allclose(plan.message_sizes, 1.0)

    def test_master_waits_for_all_workers(self):
        plan = UncodedScheme().build_plan(12, 4)
        aggregator = plan.new_aggregator()
        for worker in range(3):
            assert not aggregator.receive(worker, None)
        assert aggregator.receive(3, None)

    def test_formulas(self):
        scheme = UncodedScheme()
        assert scheme.expected_recovery_threshold(100, 50) == 50.0
        assert scheme.expected_communication_load(100, 50) == 50.0

    def test_encoder_sums(self, rng):
        plan = UncodedScheme().build_plan(6, 2)
        gradients = rng.standard_normal((3, 2))
        np.testing.assert_allclose(plan.encode(0, gradients), gradients.sum(axis=0))


class TestSimpleRandomizedScheme:
    def test_plan_message_sizes_equal_load(self, rng):
        plan = SimpleRandomizedScheme(load=4).build_plan(10, 6, rng)
        np.testing.assert_allclose(plan.message_sizes, 4.0)
        assert plan.computational_load_units == 4

    def test_identity_encoder(self, rng):
        plan = SimpleRandomizedScheme(load=3).build_plan(10, 4, rng)
        gradients = rng.standard_normal((3, 2))
        np.testing.assert_allclose(plan.encode(0, gradients), gradients)

    def test_master_stops_at_unit_coverage(self, rng):
        scheme = SimpleRandomizedScheme(load=5)
        plan = scheme.build_feasible_plan(10, 30, rng=rng)
        aggregator = plan.new_aggregator()
        covered = np.zeros(10, dtype=bool)
        for worker in range(30):
            complete = aggregator.receive(worker, None)
            covered[plan.worker_units(worker)] = True
            if covered.all():
                assert complete
                break
            assert not complete

    def test_load_validation(self):
        with pytest.raises(ConfigurationError):
            SimpleRandomizedScheme(load=11).build_plan(10, 5)

    def test_formula_hooks(self):
        scheme = SimpleRandomizedScheme(load=5)
        threshold = scheme.expected_recovery_threshold(50, 20)
        load = scheme.expected_communication_load(50, 20)
        assert load == pytest.approx(5 * threshold)


class TestRegistry:
    def test_all_names_constructible(self):
        for name in scheme_registry():
            scheme = make_scheme(name, load=2)
            assert scheme is not None

    def test_bcc_and_uncoded_types(self):
        from repro.schemes.bcc import BCCScheme

        assert isinstance(make_scheme("bcc", load=3), BCCScheme)
        assert isinstance(make_scheme("uncoded"), UncodedScheme)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_scheme("mystery-scheme")
