"""Heterogeneous clusters: load allocation and the generalized BCC scheme.

Section IV of the paper extends BCC to clusters whose workers have different
speeds. This example

1. builds the paper's Fig. 5 cluster (95 slow workers, 5 fast workers, all
   with a large per-example shift),
2. solves the load-allocation problem P2 with the HCMM-style solver and shows
   how the optimal loads concentrate on the fast workers,
3. compares the average time to "coverage" (every example's gradient received
   at least once) of the generalized BCC scheme against the proportional
   load-balancing baseline,
4. evaluates the Theorem 2 lower/upper bounds for the same cluster, and
5. shows that the heterogeneous schemes are constructible *by name* — from
   the registry (``scheme_from_config("generalized-bcc", cluster=...)``) and
   from a plain config mapping inside a :class:`~repro.api.JobSpec`, which
   injects the job's cluster automatically.

Run with::

    python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import ClusterSpec, scheme_from_config, solve_p2_allocation, theorem2_bounds
from repro.api import JobSpec, run
from repro.cluster.allocation import load_balanced_allocation
from repro.experiments.fig5 import run_fig5
from repro.utils.tables import TextTable


def main() -> None:
    num_examples = 300
    cluster = ClusterSpec.paper_fig5_cluster(num_workers=60, num_fast=3)

    # --- 1. P2-optimal loads vs proportional loads ----------------------- #
    target = int(num_examples * np.log(num_examples))
    p2 = solve_p2_allocation(cluster, target=target, max_load=num_examples)
    lb = load_balanced_allocation(cluster, num_examples)

    table = TextTable(
        ["allocation", "slow-worker load", "fast-worker load", "total assigned"],
        title=f"Load allocation for m={num_examples} over {cluster.num_workers} workers",
    )
    table.add_row(
        ["P2 (generalized BCC)", int(p2.loads[0]), int(p2.loads[-1]), p2.total_load]
    )
    table.add_row(
        ["proportional (LB)", int(lb.loads[0]), int(lb.loads[-1]), lb.total_load]
    )
    print(table.render())
    print()

    # --- 2. Average completion times (the Fig. 5 comparison) ------------- #
    result = run_fig5(num_examples=num_examples, cluster=cluster, num_trials=150, rng=0)
    print(result.render())
    print()

    # --- 3. Theorem 2 bounds --------------------------------------------- #
    bounds = theorem2_bounds(cluster, num_examples, rng=1, num_trials=150)
    bounds_table = TextTable(["quantity", "seconds"], title="Theorem 2 bounds")
    bounds_table.add_row(["lower bound  min E[T-hat(m)]", bounds.lower])
    bounds_table.add_row(["measured generalized BCC (from Fig. 5 run)", result.bcc_average_time])
    bounds_table.add_row(["upper bound  min E[T-hat(c m log m)] + 1", bounds.upper])
    print(bounds_table.render())
    print()

    # --- 4. Config-driven construction of the heterogeneous schemes ------- #
    scheme = scheme_from_config("generalized-bcc", cluster=cluster)
    plan = scheme.build_feasible_plan(num_examples, cluster.num_workers, rng=0)
    print(
        f"scheme_from_config('generalized-bcc', cluster=...) assigns "
        f"{int(plan.metadata['loads'].sum())} examples in total"
    )
    job = run(
        JobSpec(
            scheme={"name": "generalized-bcc"},
            cluster=cluster,
            num_units=num_examples,
            num_iterations=20,
            serialize_master_link=False,
            seed=0,
        )
    )
    print(
        "JobSpec({'name': 'generalized-bcc'}) simulated 20 iterations: "
        f"avg recovery threshold {job.average_recovery_threshold:.1f} of "
        f"{cluster.num_workers} workers"
    )


if __name__ == "__main__":
    main()
