"""Quickstart: straggler mitigation with the Batched Coupon's Collector scheme.

This example walks through the library's core objects in a few dozen lines:

1. build a simulated cluster whose workers straggle,
2. compare the BCC scheme against the uncoded and cyclic-repetition
   baselines with the discrete-event simulator (timing only),
3. verify on a tiny dataset that the gradient the BCC master reconstructs is
   *exactly* the full-batch gradient.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import BCCScheme, LeastSquaresLoss, distributed_gradient
from repro.api import JobSpec, Sweep, run_sweep
from repro.datasets.synthetic import make_linear_regression_data
from repro.experiments import ec2_like_cluster
from repro.gradients.evaluation import full_gradient
from repro.utils.tables import TextTable


def compare_schemes() -> None:
    """Simulate 50 iterations of distributed GD under three schemes.

    One :class:`JobSpec` describes the job; the sweep swaps the scheme axis
    and runs every configuration on the timing simulation backend.
    """
    num_workers = 50          # workers in the cluster
    num_batches = 50          # data units ("super examples"): batches of 100 points
    load = 10                 # batches processed per worker for BCC / cyclic repetition

    base = JobSpec(
        scheme={"name": "uncoded"},
        cluster=ec2_like_cluster(num_workers),
        num_units=num_batches,
        num_iterations=50,
        unit_size=100,
        serialize_master_link=False,
        seed=0,
    )
    sweep = Sweep(
        base,
        parameters={
            "scheme": [
                {"name": "uncoded"},
                {"name": "cyclic-repetition", "load": load},
                {"name": "bcc", "load": load},
            ]
        },
    )
    results = {
        record.result.scheme_name: record.result
        for record in run_sweep(sweep).records
    }

    table = TextTable(
        ["scheme", "avg workers waited for", "total time (s)", "speed-up vs uncoded"],
        title="50 simulated iterations, 50 workers, EC2-like straggling",
    )
    for name, job in results.items():
        speedup = 1.0 - job.total_time / results["uncoded"].total_time
        table.add_row(
            [name, job.average_recovery_threshold, job.total_time, f"{100 * speedup:.1f}%"]
        )
    print(table.render())
    print()


def verify_exact_recovery() -> None:
    """The BCC master recovers the exact full gradient despite hearing few workers."""
    dataset, _ = make_linear_regression_data(num_examples=40, num_features=6, seed=0)
    model = LeastSquaresLoss()
    weights = np.zeros(6)

    plan = BCCScheme(load=8).build_feasible_plan(
        num_units=40, num_workers=30, rng=1
    )
    arrival_order = np.random.default_rng(2).permutation(30)
    decoded, workers_heard = distributed_gradient(
        plan, model, dataset, weights, arrival_order
    )
    exact = full_gradient(model, dataset, weights)

    print(
        f"BCC heard {workers_heard} of 30 workers; "
        f"max |decoded - exact| = {np.max(np.abs(decoded - exact)):.2e}"
    )


if __name__ == "__main__":
    compare_schemes()
    verify_exact_recovery()
