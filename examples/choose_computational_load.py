"""Choosing the computational load analytically, without running a sweep.

The paper picks the computational load ``r`` "based on the memory constraints
of the instances so as to minimize the total running times". This example
shows how to make that choice with the library's closed-form run-time
predictor (:func:`repro.analysis.predict_iteration_time`), and then checks
the prediction against the discrete-event simulator for the chosen load.

Run with::

    python examples/choose_computational_load.py
"""

from repro.analysis import predict_iteration_time
from repro.api import JobSpec, run
from repro.experiments import ec2_like_cluster
from repro.experiments.ec2 import EC2LikeConfig
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay
from repro.utils.tables import TextTable


def main() -> None:
    num_batches, num_workers, points_per_batch = 50, 50, 100
    config = EC2LikeConfig()
    compute = ShiftedExponentialDelay(
        straggling=config.straggling, shift=config.seconds_per_example
    )
    communication = LinearCommunicationModel(
        latency=config.comm_latency,
        seconds_per_unit=config.comm_seconds_per_unit,
        jitter=config.comm_jitter,
    )

    # --- 1. Predict the per-iteration time of BCC for every feasible load. --- #
    table = TextTable(
        ["load r", "predicted K", "predicted time/iteration (s)"],
        title="Analytical run-time prediction for BCC (m = 50 batches, n = 50 workers)",
    )
    candidates = [2, 5, 10, 25, 50]
    predictions = {}
    for load in candidates:
        prediction = predict_iteration_time(
            "bcc", num_batches, num_workers, load, points_per_batch, compute, communication
        )
        predictions[load] = prediction
        table.add_row([load, prediction.recovery_threshold, prediction.total_time])
    print(table.render())

    best_load = min(candidates, key=lambda load: predictions[load].total_time)
    print(f"\npredicted best load: r = {best_load}\n")

    # --- 2. Validate the chosen operating point against the simulator. --- #
    job = run(
        JobSpec(
            scheme={"name": "bcc", "load": best_load},
            cluster=ec2_like_cluster(num_workers, config),
            num_units=num_batches,
            num_iterations=50,
            unit_size=points_per_batch,
            serialize_master_link=False,
            seed=0,
        )
    )
    print(
        f"simulator at r = {best_load}: "
        f"{job.total_time / job.num_iterations:.4f} s/iteration "
        f"(predicted {predictions[best_load].total_time:.4f} s/iteration)"
    )


if __name__ == "__main__":
    main()
