"""The paper's EC2 experiment, end to end (scaled down to run in seconds).

Reproduces the structure of Section III-C: train a logistic-regression model
with Nesterov's accelerated gradient method on the paper's synthetic
mixture-of-Gaussians dataset, distributed over a straggling cluster, under
the uncoded, cyclic-repetition and BCC schemes. The run is *semantic*: every
iteration the workers that the timing simulation heard from contribute their
real encoded gradients, the master decodes, and the model is updated — so the
example reports both the Table-I-style timing breakdown and the training
loss, demonstrating that all three schemes follow the identical optimization
trajectory while spending very different amounts of (simulated) time.

Run with::

    python examples/logistic_regression_ec2_style.py
"""

from repro.experiments.fig4 import ScenarioConfig, run_scenario
from repro.utils.tables import TextTable


def main() -> None:
    # A scaled-down scenario one: 20 workers, 20 batches of 50 points,
    # 4000-dimensional features, 30 Nesterov iterations. Scale these up to
    # the paper's (50, 50, 100, 8000, 100) to reproduce Table I exactly.
    config = ScenarioConfig(
        name="ec2-style (scaled down)",
        num_workers=20,
        num_batches=20,
        points_per_batch=50,
        load=5,
        num_iterations=30,
        num_features=4000,
    )
    result = run_scenario(config, rng=0, semantic=True)

    print(result.render())
    print()

    table = TextTable(
        ["scheme", "final training loss", "avg workers waited for", "total simulated time (s)"],
        title="Training outcome (all schemes recover the exact gradient each iteration)",
    )
    # run_scenario routes through the unified API, so each job is a RunResult
    # whose summary() carries the timing breakdown and the final loss.
    for name, job in result.jobs.items():
        summary = job.summary()
        table.add_row(
            [
                name,
                summary["final_loss"],
                summary["recovery_threshold"],
                summary["total_time"],
            ]
        )
    print(table.render())
    print()
    print(
        "BCC speed-up over uncoded:          "
        f"{100 * result.speedup_over('bcc', 'uncoded'):.1f}%"
    )
    print(
        "BCC speed-up over cyclic repetition: "
        f"{100 * result.speedup_over('bcc', 'cyclic-repetition'):.1f}%"
    )


if __name__ == "__main__":
    main()
