"""Fig. 2 tradeoff curve from both engines: closed forms vs Monte Carlo.

The paper's Fig. 2 plots recovery threshold against computational load for
BCC, the simple randomized scheme, the cyclic-repetition code, and the
``m/r`` lower bound. This example reproduces that tradeoff twice with the
*same* :class:`~repro.api.JobSpec` grid —

1. on the **timing** backend (Monte-Carlo simulation of every iteration),
2. on the **analytic** backend (closed-form expectations, no simulation) —

and prints one plot-ready table with both estimates side by side, plus the
wall-clock cost of each backend. The analytic column costs O(1) per grid
point, which is why sweeping parameter spaces with it is effectively free;
the simulation column is the ground truth it is cross-validated against
(the test suite pins their agreement to <= 15 % relative error).

Run with::

    python examples/analytic_vs_simulation.py
"""

import time

from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.experiments.ec2 import ec2_like_cluster
from repro.utils.tables import TextTable

NUM_WORKERS = 100  # the figure uses m = n = 100
NUM_UNITS = 100
UNIT_SIZE = 100
LOADS = list(range(5, 51, 5))
SCHEMES = ("bcc", "randomized", "cyclic-repetition")
TRIALS = 5          # placements per cell for the Monte-Carlo estimate
ITERATIONS = 100    # simulated iterations per placement


def run_tradeoff(backend, trials: int, iterations: int):
    """Run the (scheme x load) grid on one backend; return (result, seconds)."""
    base = JobSpec(
        scheme={"name": "bcc", "load": LOADS[0]},
        cluster=ec2_like_cluster(NUM_WORKERS),
        num_units=NUM_UNITS,
        num_iterations=iterations,
        unit_size=UNIT_SIZE,
        serialize_master_link=False,
        seed=0,
    )
    sweep = Sweep(
        base,
        parameters={
            "scheme.name": list(SCHEMES),
            "scheme.load": LOADS,
        },
        trials=trials,
        backend=backend,
    )
    started = time.perf_counter()
    result = run_sweep(sweep)
    return result, time.perf_counter() - started


def main() -> None:
    simulated, sim_seconds = run_tradeoff(
        TimingSimBackend(engine="vectorized"), TRIALS, ITERATIONS
    )
    analytic, ana_seconds = run_tradeoff("analytic", 1, 1)

    # Trial-averaged recovery threshold and per-iteration time per cell.
    sim_rows = simulated.aggregate(metrics=["recovery_threshold", "total_time"])
    ana_rows = analytic.aggregate(metrics=["recovery_threshold", "total_time"])

    table = TextTable(
        [
            "scheme",
            "r",
            "K (simulated)",
            "K (analytic)",
            "t/iter (simulated)",
            "t/iter (analytic)",
        ],
        title=(
            f"Fig. 2 tradeoff, both backends (m={NUM_UNITS}, n={NUM_WORKERS}; "
            f"simulation: {TRIALS} placements x {ITERATIONS} iterations)"
        ),
    )
    for sim_row, ana_row in zip(sim_rows, ana_rows):
        table.add_row(
            [
                sim_row["scheme.name"],
                sim_row["scheme.load"],
                round(sim_row["recovery_threshold"], 2),
                round(ana_row["recovery_threshold"], 2),
                round(sim_row["total_time"] / ITERATIONS, 5),
                round(ana_row["total_time"], 5),
            ]
        )
    print(table.render())
    print()
    print(f"simulation backend: {sim_seconds:7.2f}s")
    print(f"analytic backend:   {ana_seconds:7.2f}s "
          f"({sim_seconds / ana_seconds:.0f}x faster)")


if __name__ == "__main__":
    main()
