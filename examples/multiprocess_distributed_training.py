"""Real parallel distributed GD with multiprocessing workers.

Everything in the other examples runs under *simulated* time. This example
uses the :mod:`repro.runtime` backend instead: one OS process per worker, an
mpi4py-style queue communicator, asynchronous collection at the master and
artificially injected stragglers — the same structure as the paper's MPI4py
deployment, shrunk to laptop size.

Two runs are compared on identical data and identical injected straggling:

* the uncoded scheme, which must wait for the deliberately slow worker every
  iteration, and
* the BCC scheme, which almost never needs it.

Run with::

    python examples/multiprocess_distributed_training.py
"""

import numpy as np

from repro import BCCScheme, LogisticLoss, NesterovAcceleratedGradient
from repro.api import JobSpec, Workload, run
from repro.datasets.batching import make_batches
from repro.datasets.synthetic import LogisticDataConfig, make_paper_logistic_data
from repro.stragglers.models import BimodalStragglerDelay, DeterministicDelay
from repro.utils.rng import as_generator
from repro.utils.tables import TextTable


def main() -> None:
    num_workers = 6
    num_batches = 12
    points_per_batch = 25
    num_iterations = 10
    bcc_seed = 1

    config = LogisticDataConfig(
        num_examples=num_batches * points_per_batch, num_features=200
    )
    dataset, _ = make_paper_logistic_data(config, seed=0)
    workload = Workload(
        model=LogisticLoss(),
        dataset=dataset,
        optimizer=NesterovAcceleratedGradient(0.3),
        unit_spec=make_batches(dataset.num_examples, points_per_batch),
    )

    # BCC uses a load of 6 batches, i.e. the 12 batches form 2 BCC groups, so
    # the master typically stops after hearing ~3 of the 6 workers. Preview
    # the placement the backend will draw from the same seed, then make one
    # *redundant* BCC worker the straggler: a worker whose group is also held
    # by somebody else, so BCC can ignore it while the uncoded scheme
    # (disjoint data) must wait for it every time.
    preview_plan = BCCScheme(load=6).build_feasible_plan(
        num_batches, num_workers, rng=as_generator(bcc_seed)
    )
    batch_choices = preview_plan.metadata["batch_choices"]
    straggler = next(
        worker
        for worker in range(num_workers)
        if (batch_choices == batch_choices[worker]).sum() >= 2
    )

    # The straggler sleeps ~0.6 ms per processed example (tens of
    # milliseconds per iteration); the rest are fast with occasional mild
    # slowdowns.
    straggle_delays = [
        DeterministicDelay(seconds_per_example=6e-4)
        if worker == straggler
        else BimodalStragglerDelay(
            seconds_per_example=1e-5, straggle_probability=0.05, slowdown=20.0
        )
        for worker in range(num_workers)
    ]

    table = TextTable(
        ["scheme", "final loss", "avg workers waited for", "wall-clock (s)"],
        title=f"Real multiprocessing run: {num_workers} worker processes, "
        f"{num_iterations} Nesterov iterations, worker {straggler} straggles",
    )
    for scheme, seed in (({"name": "uncoded"}, 0), ({"name": "bcc", "load": 6}, bcc_seed)):
        spec = JobSpec(
            scheme=scheme,
            num_units=None,
            num_iterations=num_iterations,
            seed=seed,
            workload=workload,
            backend_options={
                "num_workers": num_workers,
                "straggle_delays": straggle_delays,
            },
        )
        result = run(spec, backend="multiprocess")
        table.add_row(
            [
                result.scheme_name,
                result.training.losses[-1],
                result.average_recovery_threshold,
                result.total_seconds,
            ]
        )
    print(table.render())
    print()
    print(
        "Both schemes recover the exact full gradient every iteration, so the\n"
        "final losses match; BCC simply avoids waiting for the injected straggler."
    )


if __name__ == "__main__":
    main()
